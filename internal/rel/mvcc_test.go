package rel

import (
	"fmt"
	"sync"
	"testing"
)

func mvccFixture(t *testing.T) (*Catalog, *Table, *Index, *Footprint) {
	t.Helper()
	c := NewCatalog()
	tb, err := c.CreateTable("T", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	ix, err := c.CreateIndex("IX_NAME", "T", false, []int{1}, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := c.Footprint([]string{"T"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c, tb, ix, fp
}

// readFP returns a read-only footprint over T: snapshot reads must not use
// a write footprint (write transactions always read Latest).
func readFP(t *testing.T, c *Catalog) *Footprint {
	t.Helper()
	fp, err := c.Footprint(nil, []string{"T"})
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

func insertRow(t *testing.T, fp *Footprint, id int64, name string) RowID {
	t.Helper()
	tx := fp.Begin()
	rid, err := tx.Insert("T", []Value{NewInt(id), NewString(name), NewFloat(0)})
	if err != nil {
		tx.Rollback()
		t.Fatal(err)
	}
	tx.Commit()
	return rid
}

func scanNames(t *testing.T, fp *Footprint, asOf Version) []string {
	t.Helper()
	tx := fp.BeginAt(asOf)
	defer tx.Commit()
	var names []string
	if err := tx.Scan("T", func(_ RowID, vals []Value) bool {
		names = append(names, vals[1].Str())
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return names
}

func TestSnapshotSeesFrozenState(t *testing.T) {
	c, _, _, fp := mvccFixture(t)
	rfp := readFP(t, c)
	rid := insertRow(t, fp, 1, "a")
	insertRow(t, fp, 2, "b")

	v1 := c.Pin()
	defer c.Unpin(v1)

	// Mutate after the pin: update row 1, delete row 2, insert row 3.
	tx := fp.Begin()
	if err := tx.Update("T", rid, []Value{NewInt(1), NewString("a2"), NewFloat(1)}); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	tx = fp.Begin()
	var rid2 RowID = -1
	_ = tx.Scan("T", func(r RowID, vals []Value) bool {
		if vals[0].Int() == 2 {
			rid2 = r
		}
		return true
	})
	if _, err := tx.Delete("T", rid2); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	insertRow(t, fp, 3, "c")

	if got := scanNames(t, rfp, v1); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("snapshot scan = %v, want [a b]", got)
	}
	if got := scanNames(t, rfp, Latest); len(got) != 2 || got[0] != "a2" || got[1] != "c" {
		t.Fatalf("latest scan = %v, want [a2 c]", got)
	}

	// GetAt sees the old image at v1.
	tx = rfp.BeginAt(v1)
	vals, ok, err := tx.Get("T", rid)
	if err != nil || !ok || vals[1].Str() != "a" {
		t.Fatalf("GetAt(v1) = %v %v %v, want image a", vals, ok, err)
	}
	vals, ok, err = tx.Get("T", rid2)
	if err != nil || !ok || vals[0].Int() != 2 {
		t.Fatalf("GetAt(v1) deleted row = %v %v %v, want visible", vals, ok, err)
	}
	tx.Commit()
}

func TestSnapshotProbeFiltersStaleEntries(t *testing.T) {
	c, tb, ix, fp := mvccFixture(t)
	rfp := readFP(t, c)
	rid := insertRow(t, fp, 1, "k1")

	v1 := c.Pin()
	defer c.Unpin(v1)

	tx := fp.Begin()
	if err := tx.Update("T", rid, []Value{NewInt(1), NewString("k2"), NewFloat(0)}); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	probe := func(asOf Version, key string) (n int, got string) {
		rtx := rfp.BeginAt(asOf)
		defer rtx.Commit()
		_ = rtx.Probe("T", "IX_NAME", []Value{NewString(key)}, func(_ RowID, vals []Value) bool {
			n++
			got = vals[1].Str()
			return true
		})
		return
	}
	if n, got := probe(v1, "k1"); n != 1 || got != "k1" {
		t.Fatalf("probe(v1, k1) = %d %q, want 1 k1", n, got)
	}
	if n, _ := probe(v1, "k2"); n != 0 {
		t.Fatalf("probe(v1, k2) = %d, want 0 (row had k1 at v1)", n)
	}
	if n, got := probe(Latest, "k2"); n != 1 || got != "k2" {
		t.Fatalf("probe(latest, k2) = %d %q, want 1 k2", n, got)
	}
	if n, _ := probe(Latest, "k1"); n != 0 {
		t.Fatalf("probe(latest, k1) = %d, want 0 (stale entry must be filtered)", n)
	}

	// A range probe spanning both keys must visit the row exactly once per
	// snapshot, even though the tree holds two entries for it.
	tb.RLock()
	for _, asOf := range []Version{v1, Latest} {
		n := 0
		tb.ProbeRangeAt(ix, NewString("k0"), NewString("k9"), true, true, asOf, func(RowID, []Value) bool {
			n++
			return true
		})
		if n != 1 {
			t.Fatalf("range probe at %d visited %d rows, want 1", asOf, n)
		}
	}
	tb.RUnlock()
}

func TestGarbageCollectedAfterUnpin(t *testing.T) {
	c, tb, ix, fp := mvccFixture(t)
	rid := insertRow(t, fp, 1, "k1")
	insertRow(t, fp, 2, "x")

	v1 := c.Pin()
	tx := fp.Begin()
	if err := tx.Update("T", rid, []Value{NewInt(1), NewString("k2"), NewFloat(0)}); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	tx = fp.Begin()
	if _, err := tx.Delete("T", rid); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	// While pinned: stale entry, history image, and dead slot all retained.
	tb.RLock()
	if ix.Len() != 3 { // k1 (stale), k2 (dead row), x
		t.Fatalf("index Len = %d while pinned, want 3", ix.Len())
	}
	if len(tb.byRID) != 2 {
		t.Fatalf("byRID len = %d while pinned, want 2", len(tb.byRID))
	}
	tb.RUnlock()

	c.Unpin(v1) // triggers GC: nothing pinned anymore

	tb.RLock()
	defer tb.RUnlock()
	if ix.Len() != 1 {
		t.Fatalf("index Len = %d after GC, want 1", ix.Len())
	}
	if len(tb.byRID) != 1 {
		t.Fatalf("byRID len = %d after GC, want 1", len(tb.byRID))
	}
	if len(tb.garbage) != 0 {
		t.Fatalf("garbage backlog = %d after GC, want 0", len(tb.garbage))
	}
	for i := range tb.rows {
		if !tb.rows[i].dead && tb.rows[i].prev != nil {
			t.Fatal("history chain survived GC")
		}
	}
}

func TestKeyCycleDoesNotLoseLiveEntry(t *testing.T) {
	// K1 -> K2 -> K1: GC of the first update's stale-entry record must not
	// delete the entry the row legitimately owns again.
	c, tb, ix, fp := mvccFixture(t)
	rid := insertRow(t, fp, 1, "k1")
	v1 := c.Pin()
	for _, name := range []string{"k2", "k1"} {
		tx := fp.Begin()
		if err := tx.Update("T", rid, []Value{NewInt(1), NewString(name), NewFloat(0)}); err != nil {
			t.Fatal(err)
		}
		tx.Commit()
	}
	c.Unpin(v1)
	c.runGC()

	tb.RLock()
	defer tb.RUnlock()
	n := 0
	tb.ProbeAt(ix, []Value{NewString("k1")}, Latest, func(_ RowID, vals []Value) bool {
		n++
		return true
	})
	if n != 1 {
		t.Fatalf("probe(k1) after K1->K2->K1 and GC = %d rows, want 1", n)
	}
	if ix.Len() != 1 {
		t.Fatalf("index Len = %d after GC, want 1", ix.Len())
	}
}

func TestUniqueKeyReusableAfterVersionedDelete(t *testing.T) {
	c, _, _, fp := mvccFixture(t)
	rfp := readFP(t, c)
	if _, err := c.CreateIndex("PK", "T", true, []int{0}, "", nil); err != nil {
		t.Fatal(err)
	}
	rid := insertRow(t, fp, 7, "old")

	v1 := c.Pin()
	defer c.Unpin(v1)

	tx := fp.Begin()
	if _, err := tx.Delete("T", rid); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	// The dead row's PK entry is still in the tree (pinned), but inserting
	// the same key must succeed: uniqueness is judged against live rows.
	insertRow(t, fp, 7, "new")

	// And a true duplicate is still rejected.
	tx = fp.Begin()
	_, err := tx.Insert("T", []Value{NewInt(7), NewString("dup"), NewFloat(0)})
	tx.Rollback()
	if err == nil {
		t.Fatal("duplicate key accepted")
	}

	// The old snapshot still sees exactly the old row.
	if got := scanNames(t, rfp, v1); len(got) != 1 || got[0] != "old" {
		t.Fatalf("snapshot scan = %v, want [old]", got)
	}
	if got := scanNames(t, rfp, Latest); len(got) != 1 || got[0] != "new" {
		t.Fatalf("latest scan = %v, want [new]", got)
	}
}

func TestRollbackVersionPushUpdate(t *testing.T) {
	c, tb, ix, fp := mvccFixture(t)
	rid := insertRow(t, fp, 1, "a")
	before := c.CurrentVersion()

	tx := fp.Begin()
	if err := tx.Update("T", rid, []Value{NewInt(1), NewString("b"), NewFloat(0)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert("T", []Value{NewInt(2), NewString("c"), NewFloat(0)}); err != nil {
		t.Fatal(err)
	}
	tx.Rollback()

	if got := c.CurrentVersion(); got != before {
		t.Fatalf("clock advanced by rolled-back txn: %d -> %d", before, got)
	}
	if got := scanNames(t, readFP(t, c), Latest); len(got) != 1 || got[0] != "a" {
		t.Fatalf("post-rollback scan = %v, want [a]", got)
	}
	tb.RLock()
	defer tb.RUnlock()
	if ix.Len() != 1 {
		t.Fatalf("index Len = %d after rollback, want 1", ix.Len())
	}
	if n := ix.CountPrefix([]Value{NewString("b")}); n != 0 {
		t.Fatalf("rolled-back entry b still indexed (%d)", n)
	}
	for i := range tb.rows {
		if !tb.rows[i].dead && tb.rows[i].prev != nil {
			t.Fatal("rolled-back update left a history image")
		}
	}
}

func TestRollbackUpdateBackToFormerKeyKeepsHistoryEntry(t *testing.T) {
	// Commit K1 -> K2 while pinned, then roll back an attempted K2 -> K1.
	// The rollback must not remove the k1 entry: the pinned snapshot still
	// reaches the historical image through it.
	c, _, _, fp := mvccFixture(t)
	rid := insertRow(t, fp, 1, "k1")
	v1 := c.Pin()
	defer c.Unpin(v1)

	tx := fp.Begin()
	if err := tx.Update("T", rid, []Value{NewInt(1), NewString("k2"), NewFloat(0)}); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	tx = fp.Begin()
	if err := tx.Update("T", rid, []Value{NewInt(1), NewString("k1"), NewFloat(0)}); err != nil {
		t.Fatal(err)
	}
	tx.Rollback()

	rtx := readFP(t, c).BeginAt(v1)
	n := 0
	_ = rtx.Probe("T", "IX_NAME", []Value{NewString("k1")}, func(_ RowID, vals []Value) bool {
		n++
		return true
	})
	rtx.Commit()
	if n != 1 {
		t.Fatalf("snapshot probe(k1) after rollback = %d rows, want 1", n)
	}
}

func TestWriterVersionsAreSerialized(t *testing.T) {
	c, _, _, fp := mvccFixture(t)
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tx := fp.Begin()
				if _, err := tx.Insert("T", []Value{NewInt(int64(w*1000 + i)), NewString(fmt.Sprint("w", w)), NewFloat(0)}); err != nil {
					tx.Rollback()
					panic(err)
				}
				tx.Commit()
			}
		}(w)
	}
	wg.Wait()
	// Every commit advanced the clock by exactly one.
	want := firstVersion + Version(writers*perWriter)
	if got := c.CurrentVersion(); got != want {
		t.Fatalf("clock = %d, want %d (one version per commit)", got, want)
	}
	if got := scanNames(t, readFP(t, c), Latest); len(got) != writers*perWriter {
		t.Fatalf("row count = %d, want %d", len(got), writers*perWriter)
	}
}

func TestConcurrentReadersWithWriterAndGC(t *testing.T) {
	c, _, _, fp := mvccFixture(t)
	for i := 0; i < 50; i++ {
		insertRow(t, fp, int64(i), fmt.Sprint("n", i%5))
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	rfp := readFP(t, c)
	count := func(asOf Version) int {
		tx := rfp.BeginAt(asOf)
		defer tx.Commit()
		n := 0
		_ = tx.Scan("T", func(RowID, []Value) bool { n++; return true })
		return n
	}
	// Readers: pin, verify the frozen count across repeated scans, unpin.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := c.Pin()
				want := count(v)
				for k := 0; k < 5; k++ {
					if got := count(v); got != want {
						panic(fmt.Sprintf("snapshot drifted: %d -> %d", want, got))
					}
				}
				c.Unpin(v)
			}
		}()
	}
	// Writer: churn updates and deletes/inserts.
	for i := 0; i < 200; i++ {
		tx := fp.Begin()
		var victim RowID = -1
		_ = tx.Scan("T", func(r RowID, vals []Value) bool {
			if vals[0].Int() == int64(i%50) {
				victim = r
				return false
			}
			return true
		})
		if victim >= 0 {
			if err := tx.Update("T", victim, []Value{NewInt(int64(i % 50)), NewString(fmt.Sprint("m", i%7)), NewFloat(float64(i))}); err != nil {
				tx.Rollback()
				t.Fatal(err)
			}
		}
		tx.Commit()
	}
	close(stop)
	wg.Wait()
	c.runGC()
	if got := c.PinnedVersions(); got != 0 {
		t.Fatalf("pins leaked: %d", got)
	}
}
