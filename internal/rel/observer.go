package rel

// ChangeKind classifies one committed row mutation.
type ChangeKind uint8

// Change kinds.
const (
	ChangeInsert ChangeKind = iota
	ChangeDelete
	ChangeUpdate
)

func (k ChangeKind) String() string {
	switch k {
	case ChangeInsert:
		return "insert"
	case ChangeDelete:
		return "delete"
	default:
		return "update"
	}
}

// Change is one committed row mutation: Old is nil for inserts, New is
// nil for deletes, updates carry both. The value slices are the live
// transaction's own; observers must consume them synchronously and must
// not mutate or retain them past the ObserveCommit call.
type Change struct {
	Table string
	Kind  ChangeKind
	Old   []Value
	New   []Value
}

// ChangeObserver receives every committed logical row change, in
// transaction order. ObserveCommit runs inside Commit while the
// transaction still holds its table write locks and the catalog writer
// mutex, so observers see changes exactly serialized with respect to
// both writers and rebuild scans that hold table read locks; they must
// be fast and must not take table locks themselves.
type ChangeObserver interface {
	ObserveCommit(ver Version, changes []Change)
}

// observerBox wraps the interface so it can live in an atomic.Pointer.
type observerBox struct{ o ChangeObserver }

// SetChangeObserver attaches (or, with nil, detaches) the catalog's
// commit observer. Attach while no write transaction is in flight
// (e.g. at store open, before the catalog is shared): transactions
// capture their change list per-operation, so one attached mid-flight
// would observe a partial transaction.
func (c *Catalog) SetChangeObserver(o ChangeObserver) {
	if o == nil {
		c.obs.Store(nil)
		return
	}
	c.obs.Store(&observerBox{o: o})
}

// observer returns the attached observer, if any.
func (c *Catalog) observer() ChangeObserver {
	if b := c.obs.Load(); b != nil {
		return b.o
	}
	return nil
}
