package rel

import (
	"fmt"
	"sync"
)

// Column describes one column of a table schema.
type Column struct {
	Name string
	Type Kind // expected kind; KindNull means untyped/any
}

// Schema is an ordered list of columns.
type Schema struct {
	Columns []Column
	byName  map[string]int
}

// NewSchema builds a schema from columns. Column names are matched
// case-insensitively (callers normalize to upper case).
func NewSchema(cols ...Column) *Schema {
	s := &Schema{Columns: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		s.byName[c.Name] = i
	}
	return s
}

// Ordinal returns the position of the named column, or -1.
func (s *Schema) Ordinal(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// RowID identifies a physical row within a table for the lifetime of that
// row. RowIDs are never reused, which lets deferred cleanup records refer
// to rows by id without ABA hazards.
type RowID int64

// Table is a heap of rows plus its secondary indexes. Access is protected
// by an RWMutex; multi-table transactions acquire table locks in sorted
// name order (see Txn) to stay deadlock-free.
//
// Rows are multi-versioned: each slot carries the version at which its
// current image was written and, for logically deleted rows, the version
// at which it died; superseded images hang off the slot newest-first (see
// mvcc.go). Readers pass a Version to the *At accessors to see a
// consistent historical state.
type Table struct {
	mu      sync.RWMutex
	name    string
	schema  *Schema
	rows    []rowSlot
	byRID   map[RowID]int
	free    []int
	nextRID RowID
	live    int
	indexes []*Index
	bytes   int64        // approximate live-data footprint
	garbage []garbageRec // deferred cleanup, eligible per record (mvcc.go)
}

type rowSlot struct {
	rid  RowID
	vals []Value
	born Version   // version that wrote the current image
	died Version   // nonzero: version that logically deleted the row
	prev *verImage // superseded images, newest first
	dead bool      // slot is physically free
}

// verImage is a superseded row image kept for pinned snapshots. Its
// lifetime in the chain ends once no pin can see it (gcHistory).
type verImage struct {
	vals []Value
	born Version
	prev *verImage
}

// visibleAt returns the row image visible at version v, or false if the
// row does not exist at v. Latest means current state.
func (s *rowSlot) visibleAt(v Version) ([]Value, bool) {
	if s.dead {
		return nil, false
	}
	if v == Latest {
		if s.died != 0 {
			return nil, false
		}
		return s.vals, true
	}
	if s.born <= v {
		if s.died != 0 && s.died <= v {
			return nil, false
		}
		return s.vals, true
	}
	// Walk newest-first: the first image born at or before v is the one
	// visible there (its successor was already seen to be younger than v).
	for img := s.prev; img != nil; img = img.prev {
		if img.born <= v {
			return img.vals, true
		}
	}
	return nil, false
}

// NewTable creates an empty table.
func NewTable(name string, schema *Schema) *Table {
	return &Table{name: name, schema: schema, byRID: map[RowID]int{}}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// Lock acquires the table's write lock. RLock/RUnlock/Unlock complete the
// sync.RWMutex surface so the transaction layer can manage lock ordering.
func (t *Table) Lock()    { t.mu.Lock() }
func (t *Table) Unlock()  { t.mu.Unlock() }
func (t *Table) RLock()   { t.mu.RLock() }
func (t *Table) RUnlock() { t.mu.RUnlock() }

// Live returns the number of live rows. Callers must hold at least a read
// lock; LiveLocked is the externally synchronized variant used by the
// planner while it already holds query locks.
func (t *Table) Live() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.live
}

// LiveLocked returns the live row count without acquiring the lock.
func (t *Table) LiveLocked() int { return t.live }

// Bytes approximates the table's live-data footprint including index keys.
func (t *Table) Bytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.bytes
}

// Indexes returns the table's indexes. The returned slice must not be
// modified.
func (t *Table) Indexes() []*Index { return t.indexes }

// findDuplicateLocked reports whether a unique index already holds the
// key derived from vals for a live row other than self (pass self < 0 for
// inserts). Uniqueness is checked at the table layer because the tree may
// legitimately contain stale entries for superseded images and logically
// deleted rows; only entries backed by a currently live image count.
func (t *Table) findDuplicateLocked(ix *Index, vals []Value, self RowID) bool {
	dup := false
	ix.probeEntries(ix.keyFn(vals), func(entry string, rid RowID) bool {
		if rid == self {
			return true
		}
		slot, ok := t.byRID[rid]
		if !ok {
			return true
		}
		s := &t.rows[slot]
		if s.dead || s.died != 0 {
			return true
		}
		if ix.entryFor(s.vals, rid) != entry {
			return true // stale entry for a superseded image
		}
		dup = true
		return false
	})
	return dup
}

// insertLocked appends a row born at ver; the caller holds the write lock.
func (t *Table) insertLocked(vals []Value, ver Version) (RowID, error) {
	if len(vals) != t.schema.Len() {
		return 0, fmt.Errorf("rel: table %s: insert arity %d, want %d", t.name, len(vals), t.schema.Len())
	}
	for _, ix := range t.indexes {
		if ix.unique && t.findDuplicateLocked(ix, vals, -1) {
			return 0, fmt.Errorf("rel: unique index %s on %s: duplicate key %v", ix.name, ix.table, ix.keyFn(vals))
		}
	}
	rid := t.nextRID
	t.nextRID++
	var slot int
	if n := len(t.free); n > 0 {
		slot = t.free[n-1]
		t.free = t.free[:n-1]
		t.rows[slot] = rowSlot{rid: rid, vals: vals, born: ver}
	} else {
		slot = len(t.rows)
		t.rows = append(t.rows, rowSlot{rid: rid, vals: vals, born: ver})
	}
	t.byRID[rid] = slot
	t.live++
	for _, v := range vals {
		t.bytes += int64(v.Size())
	}
	for _, ix := range t.indexes {
		ix.insert(vals, rid)
	}
	return rid, nil
}

func (t *Table) removeSlot(slot int, rid RowID, vals []Value) {
	t.rows[slot] = rowSlot{dead: true}
	t.free = append(t.free, slot)
	delete(t.byRID, rid)
	t.live--
	for _, v := range vals {
		t.bytes -= int64(v.Size())
	}
}

// deleteLocked removes the row with the given rid at version ver; the
// caller holds the write lock. Rows created by the same version (and
// never version-updated) are removed physically — no snapshot can see
// them. Otherwise the row is only marked dead at ver and a gcSlot record
// defers physical reclamation until every pin has passed ver. It returns
// an undo record (table field unset) and any garbage produced.
func (t *Table) deleteLocked(rid RowID, ver Version) (undoRec, []garbageRec, bool) {
	slot, ok := t.byRID[rid]
	if !ok {
		return undoRec{}, nil, false
	}
	s := &t.rows[slot]
	if s.dead || s.died != 0 {
		return undoRec{}, nil, false
	}
	vals := s.vals
	// Physical removal is safe when no snapshot can see the row: either
	// the deleting version itself created it (and never version-pushed an
	// older image), or the call is non-transactional (ver == 0, direct
	// table manipulation with no snapshot readers).
	if ver == 0 || (s.born == ver && s.prev == nil) {
		for _, ix := range t.indexes {
			ix.remove(vals, rid)
		}
		t.removeSlot(slot, rid, vals)
		return undoRec{kind: undoDelete, rid: rid, vals: vals, born: ver, phys: true}, nil, true
	}
	s.died = ver
	t.live--
	for _, v := range vals {
		t.bytes -= int64(v.Size())
	}
	return undoRec{kind: undoDelete, rid: rid, vals: vals},
		[]garbageRec{{after: ver, kind: gcSlot, rid: rid}}, true
}

// updateLocked replaces the row's values at version ver; the caller holds
// the write lock. Updating a row the same version already wrote mutates
// in place (no snapshot can see the intermediate image); updating a
// committed row pushes the old image onto the history chain, keeps its
// index entries alive for pinned snapshots, and defers their removal.
func (t *Table) updateLocked(rid RowID, vals []Value, ver Version) (undoRec, []garbageRec, error) {
	slot, ok := t.byRID[rid]
	if !ok {
		return undoRec{}, nil, fmt.Errorf("rel: table %s: update of missing row %d", t.name, rid)
	}
	if len(vals) != t.schema.Len() {
		return undoRec{}, nil, fmt.Errorf("rel: table %s: update arity %d, want %d", t.name, len(vals), t.schema.Len())
	}
	s := &t.rows[slot]
	if s.dead || s.died != 0 {
		return undoRec{}, nil, fmt.Errorf("rel: table %s: update of missing row %d", t.name, rid)
	}
	old := s.vals
	// Skip index maintenance for indexes whose key is unchanged (the
	// common case: updating an attribute cell leaves the id-keyed indexes
	// alone).
	var touched []*Index
	for _, ix := range t.indexes {
		if keysEqual(ix.keyFn(old), ix.keyFn(vals)) {
			continue
		}
		touched = append(touched, ix)
	}
	for _, ix := range touched {
		if ix.unique && t.findDuplicateLocked(ix, vals, rid) {
			return undoRec{}, nil, fmt.Errorf("rel: unique index %s on %s: duplicate key %v", ix.name, ix.table, ix.keyFn(vals))
		}
	}
	var rec undoRec
	var garbage []garbageRec
	if ver == 0 || s.born == ver {
		// Same-version overwrite (or non-transactional call): in place.
		for _, ix := range touched {
			ix.remove(old, rid)
		}
		for _, ix := range touched {
			ix.insert(vals, rid)
		}
		rec = undoRec{kind: undoUpdate, rid: rid, vals: old}
	} else {
		img := &verImage{vals: old, born: s.born, prev: s.prev}
		s.prev = img
		s.born = ver
		for _, ix := range touched {
			ix.insert(vals, rid)
			garbage = append(garbage, garbageRec{
				after: ver, kind: gcIndexEntry, ix: ix, entry: ix.entryFor(old, rid), rid: rid,
			})
		}
		garbage = append(garbage, garbageRec{after: ver, kind: gcHistory, rid: rid})
		rec = undoRec{kind: undoUpdateVer, rid: rid, vals: old, born: img.born, prev: img.prev}
	}
	s.vals = vals
	for _, v := range old {
		t.bytes -= int64(v.Size())
	}
	for _, v := range vals {
		t.bytes += int64(v.Size())
	}
	return rec, garbage, nil
}

// revertInsertLocked physically removes a row inserted by the rolling-back
// transaction. Any later same-transaction updates have already been
// reverted, so the slot holds the insert-time image with no history.
func (t *Table) revertInsertLocked(rid RowID) {
	slot, ok := t.byRID[rid]
	if !ok {
		return
	}
	vals := t.rows[slot].vals
	for _, ix := range t.indexes {
		ix.remove(vals, rid)
	}
	t.removeSlot(slot, rid, vals)
}

// revertDeleteLocked undoes deleteLocked.
func (t *Table) revertDeleteLocked(rec undoRec) {
	if rec.phys {
		t.reinsertLocked(rec.rid, rec.vals, rec.born, nil)
		return
	}
	slot, ok := t.byRID[rec.rid]
	if !ok {
		return
	}
	s := &t.rows[slot]
	s.died = 0
	t.live++
	for _, v := range s.vals {
		t.bytes += int64(v.Size())
	}
}

// revertUpdateLocked undoes an in-place (same-version) update.
func (t *Table) revertUpdateLocked(rid RowID, old []Value) {
	slot, ok := t.byRID[rid]
	if !ok {
		return
	}
	s := &t.rows[slot]
	cur := s.vals
	for _, ix := range t.indexes {
		if keysEqual(ix.keyFn(cur), ix.keyFn(old)) {
			continue
		}
		ix.remove(cur, rid)
		ix.insert(old, rid)
	}
	s.vals = old
	for _, v := range cur {
		t.bytes -= int64(v.Size())
	}
	for _, v := range old {
		t.bytes += int64(v.Size())
	}
}

// revertVersionUpdateLocked undoes a version-push update: the old image
// comes back off the history chain and index entries added for the new
// image are removed — unless an older retained image happens to share the
// same entry (a key the row held before), in which case the entry stays.
func (t *Table) revertVersionUpdateLocked(rec undoRec) {
	slot, ok := t.byRID[rec.rid]
	if !ok {
		return
	}
	s := &t.rows[slot]
	cur := s.vals
	s.vals = rec.vals
	s.born = rec.born
	s.prev = rec.prev
	for _, ix := range t.indexes {
		if keysEqual(ix.keyFn(cur), ix.keyFn(rec.vals)) {
			continue
		}
		entry := ix.entryFor(cur, rec.rid)
		if !t.entryInChainLocked(s, ix, entry, rec.rid) {
			ix.removeEntry(entry)
		}
	}
	for _, v := range cur {
		t.bytes -= int64(v.Size())
	}
	for _, v := range rec.vals {
		t.bytes += int64(v.Size())
	}
}

// entryInChainLocked reports whether any image of the slot (current or
// historical) produces the given index entry.
func (t *Table) entryInChainLocked(s *rowSlot, ix *Index, entry string, rid RowID) bool {
	if ix.entryFor(s.vals, rid) == entry {
		return true
	}
	for img := s.prev; img != nil; img = img.prev {
		if ix.entryFor(img.vals, rid) == entry {
			return true
		}
	}
	return false
}

// Get returns a copy-free view of the row's current values. Callers must
// hold a read lock and must not mutate the slice.
func (t *Table) Get(rid RowID) ([]Value, bool) {
	return t.GetAt(rid, Latest)
}

// GetAt returns the row image visible at version v. Callers must hold a
// read lock and must not mutate the slice.
func (t *Table) GetAt(rid RowID, v Version) ([]Value, bool) {
	slot, ok := t.byRID[rid]
	if !ok {
		return nil, false
	}
	return t.rows[slot].visibleAt(v)
}

// Scan calls fn for every live row until fn returns false. Callers must
// hold a read lock.
func (t *Table) Scan(fn func(rid RowID, vals []Value) bool) {
	t.ScanAt(Latest, fn)
}

// ScanAt calls fn for every row visible at version v until fn returns
// false. Callers must hold a read lock.
func (t *Table) ScanAt(v Version, fn func(rid RowID, vals []Value) bool) {
	for i := range t.rows {
		vals, ok := t.rows[i].visibleAt(v)
		if !ok {
			continue
		}
		if !fn(t.rows[i].rid, vals) {
			return
		}
	}
}

// Slots returns the size of the table's physical slot array (live and
// dead rows). With ScanSlots it lets morsel-parallel scans partition the
// heap into contiguous slot ranges. Callers must hold a read lock.
func (t *Table) Slots() int { return len(t.rows) }

// ScanSlots calls fn for every live row in the slot range [lo, hi) until
// fn returns false. Visiting order matches Scan's over the same range.
// Callers must hold a read lock; concurrent ScanSlots calls on disjoint
// ranges are safe under a shared read lock.
func (t *Table) ScanSlots(lo, hi int, fn func(rid RowID, vals []Value) bool) {
	t.ScanSlotsAt(lo, hi, Latest, fn)
}

// ScanSlotsAt is ScanSlots against the state visible at version v.
func (t *Table) ScanSlotsAt(lo, hi int, v Version, fn func(rid RowID, vals []Value) bool) {
	if lo < 0 {
		lo = 0
	}
	if hi > len(t.rows) {
		hi = len(t.rows)
	}
	for i := lo; i < hi; i++ {
		vals, ok := t.rows[i].visibleAt(v)
		if !ok {
			continue
		}
		if !fn(t.rows[i].rid, vals) {
			return
		}
	}
}

// ProbeAt calls fn for every row visible at version v whose image matches
// an index entry with the given key prefix. Stale entries — ones whose
// row image at v no longer (or never did) produce that exact entry — are
// filtered here, so callers see each matching row at most once per entry
// it genuinely owns at v. Callers must hold a read lock.
func (t *Table) ProbeAt(ix *Index, key []Value, v Version, fn func(rid RowID, vals []Value) bool) {
	ix.probeEntries(key, func(entry string, rid RowID) bool {
		slot, ok := t.byRID[rid]
		if !ok {
			return true
		}
		vals, ok := t.rows[slot].visibleAt(v)
		if !ok {
			return true
		}
		if ix.entryFor(vals, rid) != entry {
			return true
		}
		return fn(rid, vals)
	})
}

// ProbeRangeAt is ProbeAt over a first-component range (see
// Index.ProbeRange for bound semantics).
func (t *Table) ProbeRangeAt(ix *Index, lo, hi Value, loInclusive, hiInclusive bool, v Version, fn func(rid RowID, vals []Value) bool) {
	ix.probeRangeEntries(lo, hi, loInclusive, hiInclusive, func(entry string, rid RowID) bool {
		slot, ok := t.byRID[rid]
		if !ok {
			return true
		}
		vals, ok := t.rows[slot].visibleAt(v)
		if !ok {
			return true
		}
		if ix.entryFor(vals, rid) != entry {
			return true
		}
		return fn(rid, vals)
	})
}

// keysEqual compares index key slices.
func keysEqual(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if Compare(a[i], b[i]) != 0 {
			return false
		}
	}
	return true
}

// addIndex attaches an index and populates it from rows currently live.
// Historical images are not back-indexed, so the planner must not use the
// index for snapshots older than its creation version. The caller holds
// the write lock.
func (t *Table) addIndex(ix *Index) error {
	for i := range t.rows {
		s := &t.rows[i]
		if s.dead || s.died != 0 {
			continue
		}
		if ix.unique && t.hasEntryForKeyLocked(ix, s.vals) {
			return fmt.Errorf("rel: unique index %s on %s: duplicate key %v", ix.name, ix.table, ix.keyFn(s.vals))
		}
		ix.insert(s.vals, s.rid)
	}
	t.indexes = append(t.indexes, ix)
	return nil
}

// hasEntryForKeyLocked reports whether the index already has any entry
// with the exact key derived from vals (used only while populating a
// fresh unique index, where every entry belongs to a live row).
func (t *Table) hasEntryForKeyLocked(ix *Index, vals []Value) bool {
	found := false
	ix.probeEntries(ix.keyFn(vals), func(string, RowID) bool {
		found = true
		return false
	})
	return found
}

// reinsertLocked restores a deleted row under its original row id (undo
// path only).
func (t *Table) reinsertLocked(rid RowID, vals []Value, born Version, prev *verImage) {
	var slot int
	if n := len(t.free); n > 0 {
		slot = t.free[n-1]
		t.free = t.free[:n-1]
		t.rows[slot] = rowSlot{rid: rid, vals: vals, born: born, prev: prev}
	} else {
		slot = len(t.rows)
		t.rows = append(t.rows, rowSlot{rid: rid, vals: vals, born: born, prev: prev})
	}
	t.byRID[rid] = slot
	t.live++
	for _, v := range vals {
		t.bytes += int64(v.Size())
	}
	for _, ix := range t.indexes {
		ix.insert(vals, rid)
	}
}
