package rel

import (
	"fmt"
	"sync"
)

// Column describes one column of a table schema.
type Column struct {
	Name string
	Type Kind // expected kind; KindNull means untyped/any
}

// Schema is an ordered list of columns.
type Schema struct {
	Columns []Column
	byName  map[string]int
}

// NewSchema builds a schema from columns. Column names are matched
// case-insensitively (callers normalize to upper case).
func NewSchema(cols ...Column) *Schema {
	s := &Schema{Columns: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		s.byName[c.Name] = i
	}
	return s
}

// Ordinal returns the position of the named column, or -1.
func (s *Schema) Ordinal(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// RowID identifies a physical row within a table for the lifetime of that
// row.
type RowID int64

// Table is a heap of rows plus its secondary indexes. Access is protected
// by an RWMutex; multi-table transactions acquire table locks in sorted
// name order (see Txn) to stay deadlock-free.
type Table struct {
	mu      sync.RWMutex
	name    string
	schema  *Schema
	rows    []rowSlot
	byRID   map[RowID]int
	free    []int
	nextRID RowID
	live    int
	indexes []*Index
	bytes   int64 // approximate data footprint
}

type rowSlot struct {
	rid  RowID
	vals []Value
	dead bool
}

// NewTable creates an empty table.
func NewTable(name string, schema *Schema) *Table {
	return &Table{name: name, schema: schema, byRID: map[RowID]int{}}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// Lock acquires the table's write lock. RLock/RUnlock/Unlock complete the
// sync.RWMutex surface so the transaction layer can manage lock ordering.
func (t *Table) Lock()    { t.mu.Lock() }
func (t *Table) Unlock()  { t.mu.Unlock() }
func (t *Table) RLock()   { t.mu.RLock() }
func (t *Table) RUnlock() { t.mu.RUnlock() }

// Live returns the number of live rows. Callers must hold at least a read
// lock; LiveLocked is the externally synchronized variant used by the
// planner while it already holds query locks.
func (t *Table) Live() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.live
}

// LiveLocked returns the live row count without acquiring the lock.
func (t *Table) LiveLocked() int { return t.live }

// Bytes approximates the table's data footprint including index keys.
func (t *Table) Bytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.bytes
}

// Indexes returns the table's indexes. The returned slice must not be
// modified.
func (t *Table) Indexes() []*Index { return t.indexes }

// insertLocked appends a row; the caller holds the write lock.
func (t *Table) insertLocked(vals []Value) (RowID, error) {
	if len(vals) != t.schema.Len() {
		return 0, fmt.Errorf("rel: table %s: insert arity %d, want %d", t.name, len(vals), t.schema.Len())
	}
	rid := t.nextRID
	t.nextRID++
	var slot int
	if n := len(t.free); n > 0 {
		slot = t.free[n-1]
		t.free = t.free[:n-1]
		t.rows[slot] = rowSlot{rid: rid, vals: vals}
	} else {
		slot = len(t.rows)
		t.rows = append(t.rows, rowSlot{rid: rid, vals: vals})
	}
	t.byRID[rid] = slot
	t.live++
	for _, v := range vals {
		t.bytes += int64(v.Size())
	}
	for _, ix := range t.indexes {
		if err := ix.insert(vals, rid); err != nil {
			// Undo: remove from earlier indexes and the heap.
			for _, prev := range t.indexes {
				if prev == ix {
					break
				}
				prev.remove(vals, rid)
			}
			t.removeSlot(slot, rid, vals)
			return 0, err
		}
	}
	return rid, nil
}

func (t *Table) removeSlot(slot int, rid RowID, vals []Value) {
	t.rows[slot].dead = true
	t.rows[slot].vals = nil
	t.free = append(t.free, slot)
	delete(t.byRID, rid)
	t.live--
	for _, v := range vals {
		t.bytes -= int64(v.Size())
	}
}

// deleteLocked removes the row with the given rid; caller holds the write
// lock. It returns the removed values for undo logging.
func (t *Table) deleteLocked(rid RowID) ([]Value, bool) {
	slot, ok := t.byRID[rid]
	if !ok {
		return nil, false
	}
	vals := t.rows[slot].vals
	for _, ix := range t.indexes {
		ix.remove(vals, rid)
	}
	t.removeSlot(slot, rid, vals)
	return vals, true
}

// updateLocked replaces the row's values; caller holds the write lock. It
// returns the previous values for undo logging.
func (t *Table) updateLocked(rid RowID, vals []Value) ([]Value, error) {
	slot, ok := t.byRID[rid]
	if !ok {
		return nil, fmt.Errorf("rel: table %s: update of missing row %d", t.name, rid)
	}
	if len(vals) != t.schema.Len() {
		return nil, fmt.Errorf("rel: table %s: update arity %d, want %d", t.name, len(vals), t.schema.Len())
	}
	old := t.rows[slot].vals
	// Skip index maintenance for indexes whose key is unchanged (the
	// common case: updating an attribute cell leaves the id-keyed indexes
	// alone).
	var touched []*Index
	for _, ix := range t.indexes {
		if keysEqual(ix.keyFn(old), ix.keyFn(vals)) {
			continue
		}
		touched = append(touched, ix)
	}
	for _, ix := range touched {
		ix.remove(old, rid)
	}
	for i, ix := range touched {
		if err := ix.insert(vals, rid); err != nil {
			// Restore the old entries.
			for j := 0; j < i; j++ {
				touched[j].remove(vals, rid)
			}
			for _, prev := range touched {
				_ = prev.insert(old, rid)
			}
			return nil, err
		}
	}
	t.rows[slot].vals = vals
	for _, v := range old {
		t.bytes -= int64(v.Size())
	}
	for _, v := range vals {
		t.bytes += int64(v.Size())
	}
	return old, nil
}

// Get returns a copy-free view of the row's values. Callers must hold a
// read lock and must not mutate the slice.
func (t *Table) Get(rid RowID) ([]Value, bool) {
	slot, ok := t.byRID[rid]
	if !ok {
		return nil, false
	}
	return t.rows[slot].vals, true
}

// Scan calls fn for every live row until fn returns false. Callers must
// hold a read lock.
func (t *Table) Scan(fn func(rid RowID, vals []Value) bool) {
	for i := range t.rows {
		if t.rows[i].dead {
			continue
		}
		if !fn(t.rows[i].rid, t.rows[i].vals) {
			return
		}
	}
}

// Slots returns the size of the table's physical slot array (live and
// dead rows). With ScanSlots it lets morsel-parallel scans partition the
// heap into contiguous slot ranges. Callers must hold a read lock.
func (t *Table) Slots() int { return len(t.rows) }

// ScanSlots calls fn for every live row in the slot range [lo, hi) until
// fn returns false. Visiting order matches Scan's over the same range.
// Callers must hold a read lock; concurrent ScanSlots calls on disjoint
// ranges are safe under a shared read lock.
func (t *Table) ScanSlots(lo, hi int, fn func(rid RowID, vals []Value) bool) {
	if lo < 0 {
		lo = 0
	}
	if hi > len(t.rows) {
		hi = len(t.rows)
	}
	for i := lo; i < hi; i++ {
		if t.rows[i].dead {
			continue
		}
		if !fn(t.rows[i].rid, t.rows[i].vals) {
			return
		}
	}
}

// keysEqual compares index key slices.
func keysEqual(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if Compare(a[i], b[i]) != 0 {
			return false
		}
	}
	return true
}

// addIndex attaches an index and populates it from existing rows. The
// caller holds the write lock.
func (t *Table) addIndex(ix *Index) error {
	for i := range t.rows {
		if t.rows[i].dead {
			continue
		}
		if err := ix.insert(t.rows[i].vals, t.rows[i].rid); err != nil {
			return err
		}
	}
	t.indexes = append(t.indexes, ix)
	return nil
}
