package rel

import (
	"fmt"
	"testing"
)

func testSchema() *Schema {
	return NewSchema(
		Column{Name: "ID", Type: KindInt},
		Column{Name: "NAME", Type: KindString},
		Column{Name: "SCORE", Type: KindFloat},
	)
}

func mustInsert(t *testing.T, tb *Table, vals ...Value) RowID {
	t.Helper()
	tb.Lock()
	defer tb.Unlock()
	rid, err := tb.insertLocked(vals, 0)
	if err != nil {
		t.Fatal(err)
	}
	return rid
}

func TestSchemaOrdinal(t *testing.T) {
	s := testSchema()
	if s.Ordinal("NAME") != 1 || s.Ordinal("MISSING") != -1 || s.Len() != 3 {
		t.Fatalf("schema lookup broken: %d %d %d", s.Ordinal("NAME"), s.Ordinal("MISSING"), s.Len())
	}
}

func TestTableInsertGetScan(t *testing.T) {
	tb := NewTable("T", testSchema())
	var rids []RowID
	for i := 0; i < 10; i++ {
		rids = append(rids, mustInsert(t, tb, NewInt(int64(i)), NewString(fmt.Sprint("n", i)), NewFloat(float64(i)/2)))
	}
	if tb.Live() != 10 {
		t.Fatalf("Live = %d, want 10", tb.Live())
	}
	tb.RLock()
	defer tb.RUnlock()
	vals, ok := tb.Get(rids[3])
	if !ok || vals[0].Int() != 3 || vals[1].Str() != "n3" {
		t.Fatalf("Get(rids[3]) = %v, %v", vals, ok)
	}
	n := 0
	tb.Scan(func(rid RowID, vals []Value) bool { n++; return true })
	if n != 10 {
		t.Fatalf("Scan visited %d rows, want 10", n)
	}
	// Early stop.
	n = 0
	tb.Scan(func(rid RowID, vals []Value) bool { n++; return n < 4 })
	if n != 4 {
		t.Fatalf("Scan early stop visited %d, want 4", n)
	}
}

func TestTableInsertArityMismatch(t *testing.T) {
	tb := NewTable("T", testSchema())
	tb.Lock()
	defer tb.Unlock()
	if _, err := tb.insertLocked([]Value{NewInt(1)}, 0); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestTableDeleteAndSlotReuse(t *testing.T) {
	tb := NewTable("T", testSchema())
	rid := mustInsert(t, tb, NewInt(1), NewString("a"), NewFloat(0))
	mustInsert(t, tb, NewInt(2), NewString("b"), NewFloat(0))

	tb.Lock()
	rec, _, ok := tb.deleteLocked(rid, 0)
	tb.Unlock()
	if !ok || rec.vals[0].Int() != 1 {
		t.Fatalf("delete = %v, %v", rec.vals, ok)
	}
	if tb.Live() != 1 {
		t.Fatalf("Live = %d, want 1", tb.Live())
	}
	tb.RLock()
	if _, ok := tb.Get(rid); ok {
		t.Fatal("deleted row still readable")
	}
	tb.RUnlock()

	// The freed slot should be reused without growing the heap.
	before := len(tb.rows)
	mustInsert(t, tb, NewInt(3), NewString("c"), NewFloat(0))
	if len(tb.rows) != before {
		t.Fatalf("slot not reused: %d rows, was %d", len(tb.rows), before)
	}

	tb.Lock()
	if _, _, ok := tb.deleteLocked(rid, 0); ok {
		t.Fatal("double delete returned ok")
	}
	tb.Unlock()
}

func TestTableUpdate(t *testing.T) {
	tb := NewTable("T", testSchema())
	rid := mustInsert(t, tb, NewInt(1), NewString("a"), NewFloat(0))
	tb.Lock()
	rec, _, err := tb.updateLocked(rid, []Value{NewInt(1), NewString("z"), NewFloat(9)}, 0)
	tb.Unlock()
	if err != nil || rec.vals[1].Str() != "a" {
		t.Fatalf("update: %v, %v", rec.vals, err)
	}
	tb.RLock()
	vals, _ := tb.Get(rid)
	tb.RUnlock()
	if vals[1].Str() != "z" || vals[2].Float() != 9 {
		t.Fatalf("post-update row = %v", vals)
	}
	tb.Lock()
	if _, _, err := tb.updateLocked(999, vals, 0); err == nil {
		t.Fatal("update of missing row accepted")
	}
	if _, _, err := tb.updateLocked(rid, vals[:1], 0); err == nil {
		t.Fatal("update arity mismatch accepted")
	}
	tb.Unlock()
}

func TestTableBytesTracking(t *testing.T) {
	tb := NewTable("T", testSchema())
	if tb.Bytes() != 0 {
		t.Fatal("empty table should have zero bytes")
	}
	rid := mustInsert(t, tb, NewInt(1), NewString("hello world"), NewFloat(0))
	after := tb.Bytes()
	if after <= 0 {
		t.Fatal("bytes should grow on insert")
	}
	tb.Lock()
	tb.deleteLocked(rid, 0)
	tb.Unlock()
	if tb.Bytes() != 0 {
		t.Fatalf("bytes after delete = %d, want 0", tb.Bytes())
	}
}

func TestIndexProbe(t *testing.T) {
	tb := NewTable("T", testSchema())
	ix := NewIndex("IX_NAME", "T", false, []int{1}, "", nil)
	tb.Lock()
	if err := tb.addIndex(ix); err != nil {
		t.Fatal(err)
	}
	tb.Unlock()
	for i := 0; i < 30; i++ {
		mustInsert(t, tb, NewInt(int64(i)), NewString(fmt.Sprint("n", i%3)), NewFloat(0))
	}
	tb.RLock()
	defer tb.RUnlock()
	n := 0
	ix.Probe([]Value{NewString("n1")}, func(rid RowID) bool {
		vals, _ := tb.Get(rid)
		if vals[1].Str() != "n1" {
			t.Fatalf("probe returned wrong row %v", vals)
		}
		n++
		return true
	})
	if n != 10 {
		t.Fatalf("probe matched %d rows, want 10", n)
	}
	if got := ix.CountPrefix([]Value{NewString("n2")}); got != 10 {
		t.Fatalf("CountPrefix = %d, want 10", got)
	}
	if got := ix.CountPrefix([]Value{NewString("zzz")}); got != 0 {
		t.Fatalf("CountPrefix missing = %d, want 0", got)
	}
}

func TestIndexMaintainedAcrossUpdateDelete(t *testing.T) {
	tb := NewTable("T", testSchema())
	ix := NewIndex("IX", "T", false, []int{1}, "", nil)
	tb.Lock()
	_ = tb.addIndex(ix)
	tb.Unlock()
	rid := mustInsert(t, tb, NewInt(1), NewString("old"), NewFloat(0))
	tb.Lock()
	_, _, err := tb.updateLocked(rid, []Value{NewInt(1), NewString("new"), NewFloat(0)}, 0)
	tb.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	tb.RLock()
	if ix.CountPrefix([]Value{NewString("old")}) != 0 {
		t.Fatal("stale index entry after update")
	}
	if ix.CountPrefix([]Value{NewString("new")}) != 1 {
		t.Fatal("missing index entry after update")
	}
	tb.RUnlock()
	tb.Lock()
	tb.deleteLocked(rid, 0)
	tb.Unlock()
	tb.RLock()
	if ix.Len() != 0 {
		t.Fatal("index entries survive delete")
	}
	tb.RUnlock()
}

func TestUniqueIndex(t *testing.T) {
	tb := NewTable("T", testSchema())
	ix := NewIndex("PK", "T", true, []int{0}, "", nil)
	tb.Lock()
	_ = tb.addIndex(ix)
	_, err := tb.insertLocked([]Value{NewInt(1), NewString("a"), NewFloat(0)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = tb.insertLocked([]Value{NewInt(1), NewString("b"), NewFloat(0)}, 0)
	tb.Unlock()
	if err == nil {
		t.Fatal("duplicate key accepted by unique index")
	}
	if tb.Live() != 1 {
		t.Fatalf("failed insert left row behind: Live = %d", tb.Live())
	}
	if ix.Len() != 1 {
		t.Fatalf("failed insert left index entry: Len = %d", ix.Len())
	}
}

func TestExpressionIndex(t *testing.T) {
	tb := NewTable("T", testSchema())
	// Index over NAME length.
	keyFn := func(vals []Value) []Value {
		return []Value{NewInt(int64(len(vals[1].Str())))}
	}
	ix := NewIndex("IX_LEN", "T", false, nil, "LEN(NAME)", keyFn)
	tb.Lock()
	_ = tb.addIndex(ix)
	tb.Unlock()
	mustInsert(t, tb, NewInt(1), NewString("ab"), NewFloat(0))
	mustInsert(t, tb, NewInt(2), NewString("xy"), NewFloat(0))
	mustInsert(t, tb, NewInt(3), NewString("long"), NewFloat(0))
	tb.RLock()
	defer tb.RUnlock()
	if got := ix.CountPrefix([]Value{NewInt(2)}); got != 2 {
		t.Fatalf("expression index CountPrefix = %d, want 2", got)
	}
	if ix.Expr() != "LEN(NAME)" {
		t.Fatalf("Expr = %q", ix.Expr())
	}
}

func TestProbeRange(t *testing.T) {
	tb := NewTable("T", testSchema())
	ix := NewIndex("IX_ID", "T", false, []int{0}, "", nil)
	tb.Lock()
	_ = tb.addIndex(ix)
	tb.Unlock()
	for i := 0; i < 20; i++ {
		mustInsert(t, tb, NewInt(int64(i)), NewString("x"), NewFloat(0))
	}
	count := func(lo, hi Value, loInc, hiInc bool) int {
		n := 0
		ix.ProbeRange(lo, hi, loInc, hiInc, func(RowID) bool { n++; return true })
		return n
	}
	tb.RLock()
	defer tb.RUnlock()
	if got := count(NewInt(5), NewInt(10), true, false); got != 5 {
		t.Fatalf("[5,10) = %d, want 5", got)
	}
	if got := count(NewInt(5), NewInt(10), true, true); got != 6 {
		t.Fatalf("[5,10] = %d, want 6", got)
	}
	if got := count(NewInt(5), NewInt(10), false, false); got != 4 {
		t.Fatalf("(5,10) = %d, want 4", got)
	}
	if got := count(Null, NewInt(3), true, false); got != 3 {
		t.Fatalf("(-inf,3) = %d, want 3", got)
	}
	if got := count(NewInt(17), Null, true, false); got != 3 {
		t.Fatalf("[17,inf) = %d, want 3", got)
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	if _, err := c.CreateTable("A", testSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTable("A", testSchema()); err == nil {
		t.Fatal("duplicate CreateTable accepted")
	}
	if _, ok := c.Table("A"); !ok {
		t.Fatal("Table lookup failed")
	}
	if _, ok := c.Table("B"); ok {
		t.Fatal("missing table found")
	}
	if _, err := c.CreateTable("B", testSchema()); err != nil {
		t.Fatal(err)
	}
	names := c.Tables()
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Fatalf("Tables = %v", names)
	}
	if err := c.DropTable("A"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropTable("A"); err == nil {
		t.Fatal("double drop accepted")
	}
	if _, err := c.CreateIndex("IX", "MISSING", false, []int{0}, "", nil); err == nil {
		t.Fatal("index on missing table accepted")
	}
	if _, err := c.CreateIndex("IX", "B", false, []int{99}, "", nil); err == nil {
		t.Fatal("index on out-of-range ordinal accepted")
	}
	if _, err := c.CreateIndex("IX", "B", false, []int{0}, "", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateIndex("IX", "B", false, []int{0}, "", nil); err == nil {
		t.Fatal("duplicate index accepted")
	}
}

func TestCreateIndexPopulatesExistingRows(t *testing.T) {
	c := NewCatalog()
	tb, _ := c.CreateTable("T", testSchema())
	mustInsert(t, tb, NewInt(1), NewString("a"), NewFloat(0))
	mustInsert(t, tb, NewInt(2), NewString("a"), NewFloat(0))
	ix, err := c.CreateIndex("IX", "T", false, []int{1}, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 2 {
		t.Fatalf("index backfill Len = %d, want 2", ix.Len())
	}
}
