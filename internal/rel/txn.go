package rel

import (
	"fmt"
	"sort"
)

// Txn is a transaction over a fixed set of tables. SQLGraph's graph update
// operations are multi-table "stored procedures" (paper Section 4.5.2):
// adding an edge touches OPA, IPA, OSA/ISA, and EA. Txn provides the
// atomicity those procedures need: all table locks are acquired up front
// in sorted name order (deadlock freedom), every mutation is undo-logged,
// and Rollback restores the pre-transaction state exactly.
type Txn struct {
	cat    *Catalog
	write  map[string]*Table
	read   map[string]*Table
	order  []lockedTable
	undo   []undoRec
	closed bool
}

type lockedTable struct {
	t     *Table
	write bool
}

type undoRec struct {
	table *Table
	kind  undoKind
	rid   RowID
	vals  []Value
}

type undoKind uint8

const (
	undoInsert undoKind = iota
	undoDelete
	undoUpdate
)

// Begin opens a transaction that will write the tables named in writeSet
// and only read those in readSet. Locks are taken immediately, in sorted
// name order; a name in both sets is locked for writing.
func (c *Catalog) Begin(writeSet, readSet []string) (*Txn, error) {
	fp, err := c.Footprint(writeSet, readSet)
	if err != nil {
		return nil, err
	}
	return fp.Begin(), nil
}

// Footprint is a pre-resolved transaction lock plan: table pointers and
// their deadlock-free lock order, computed once. Hot callers (the graph
// stored procedures run one per operation) build footprints at startup
// instead of re-resolving names and re-sorting per transaction.
type Footprint struct {
	cat   *Catalog
	write map[string]*Table
	read  map[string]*Table
	order []lockedTable
}

// Footprint resolves a lock plan.
func (c *Catalog) Footprint(writeSet, readSet []string) (*Footprint, error) {
	fp := &Footprint{cat: c, write: map[string]*Table{}, read: map[string]*Table{}}
	for _, name := range writeSet {
		t, ok := c.Table(name)
		if !ok {
			return nil, fmt.Errorf("rel: begin: table %s does not exist", name)
		}
		fp.write[name] = t
	}
	for _, name := range readSet {
		if _, dup := fp.write[name]; dup {
			continue
		}
		t, ok := c.Table(name)
		if !ok {
			return nil, fmt.Errorf("rel: begin: table %s does not exist", name)
		}
		fp.read[name] = t
	}
	names := make([]string, 0, len(fp.write)+len(fp.read))
	for n := range fp.write {
		names = append(names, n)
	}
	for n := range fp.read {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if t, ok := fp.write[n]; ok {
			fp.order = append(fp.order, lockedTable{t, true})
		} else {
			fp.order = append(fp.order, lockedTable{fp.read[n], false})
		}
	}
	return fp, nil
}

// Begin acquires the footprint's locks and returns a live transaction.
func (fp *Footprint) Begin() *Txn {
	for _, lt := range fp.order {
		if lt.write {
			lt.t.Lock()
		} else {
			lt.t.RLock()
		}
	}
	return &Txn{cat: fp.cat, write: fp.write, read: fp.read, order: fp.order}
}

func (tx *Txn) table(name string, forWrite bool) (*Table, error) {
	if t, ok := tx.write[name]; ok {
		return t, nil
	}
	if forWrite {
		return nil, fmt.Errorf("rel: txn: table %s not in write set", name)
	}
	if t, ok := tx.read[name]; ok {
		return t, nil
	}
	return nil, fmt.Errorf("rel: txn: table %s not in read set", name)
}

// Insert adds a row to a write-set table.
func (tx *Txn) Insert(table string, vals []Value) (RowID, error) {
	t, err := tx.table(table, true)
	if err != nil {
		return 0, err
	}
	if err := checkMutateHook(table); err != nil {
		return 0, err
	}
	rid, err := t.insertLocked(vals)
	if err != nil {
		return 0, err
	}
	tx.undo = append(tx.undo, undoRec{table: t, kind: undoInsert, rid: rid})
	return rid, nil
}

// Delete removes a row from a write-set table and reports whether it
// existed.
func (tx *Txn) Delete(table string, rid RowID) (bool, error) {
	t, err := tx.table(table, true)
	if err != nil {
		return false, err
	}
	if err := checkMutateHook(table); err != nil {
		return false, err
	}
	vals, ok := t.deleteLocked(rid)
	if !ok {
		return false, nil
	}
	tx.undo = append(tx.undo, undoRec{table: t, kind: undoDelete, rid: rid, vals: vals})
	return true, nil
}

// Update replaces a row in a write-set table.
func (tx *Txn) Update(table string, rid RowID, vals []Value) error {
	t, err := tx.table(table, true)
	if err != nil {
		return err
	}
	if err := checkMutateHook(table); err != nil {
		return err
	}
	old, err := t.updateLocked(rid, vals)
	if err != nil {
		return err
	}
	tx.undo = append(tx.undo, undoRec{table: t, kind: undoUpdate, rid: rid, vals: old})
	return nil
}

// Get reads a row from any table in the transaction's footprint.
func (tx *Txn) Get(table string, rid RowID) ([]Value, bool, error) {
	t, err := tx.table(table, false)
	if err != nil {
		return nil, false, err
	}
	vals, ok := t.Get(rid)
	return vals, ok, nil
}

// Scan iterates a table in the transaction's footprint.
func (tx *Txn) Scan(table string, fn func(rid RowID, vals []Value) bool) error {
	t, err := tx.table(table, false)
	if err != nil {
		return err
	}
	t.Scan(fn)
	return nil
}

// Probe looks up rows by index key within the transaction's footprint.
func (tx *Txn) Probe(table, index string, key []Value, fn func(rid RowID, vals []Value) bool) error {
	t, err := tx.table(table, false)
	if err != nil {
		return err
	}
	for _, ix := range t.indexes {
		if ix.name == index {
			ix.Probe(key, func(rid RowID) bool {
				vals, ok := t.Get(rid)
				if !ok {
					return true
				}
				return fn(rid, vals)
			})
			return nil
		}
	}
	return fmt.Errorf("rel: txn: no index %s on %s", index, table)
}

// Commit releases all locks, keeping the transaction's effects.
func (tx *Txn) Commit() {
	if !tx.closed {
		fireCommitHook()
	}
	tx.release()
}

// Rollback undoes every mutation in reverse order and releases all locks.
func (tx *Txn) Rollback() {
	if tx.closed {
		return
	}
	for i := len(tx.undo) - 1; i >= 0; i-- {
		rec := tx.undo[i]
		switch rec.kind {
		case undoInsert:
			rec.table.deleteLocked(rec.rid)
		case undoDelete:
			// Reinsert with the original rid so later undo records that
			// reference it still apply.
			rec.table.reinsertLocked(rec.rid, rec.vals)
		case undoUpdate:
			_, _ = rec.table.updateLocked(rec.rid, rec.vals)
		}
	}
	tx.release()
}

func (tx *Txn) release() {
	if tx.closed {
		return
	}
	tx.closed = true
	tx.undo = nil
	for i := len(tx.order) - 1; i >= 0; i-- {
		lt := tx.order[i]
		if lt.write {
			lt.t.Unlock()
		} else {
			lt.t.RUnlock()
		}
	}
}

// reinsertLocked restores a deleted row under its original row id (undo
// path only).
func (t *Table) reinsertLocked(rid RowID, vals []Value) {
	var slot int
	if n := len(t.free); n > 0 {
		slot = t.free[n-1]
		t.free = t.free[:n-1]
		t.rows[slot] = rowSlot{rid: rid, vals: vals}
	} else {
		slot = len(t.rows)
		t.rows = append(t.rows, rowSlot{rid: rid, vals: vals})
	}
	t.byRID[rid] = slot
	t.live++
	for _, v := range vals {
		t.bytes += int64(v.Size())
	}
	for _, ix := range t.indexes {
		_ = ix.insert(vals, rid)
	}
}
