package rel

import (
	"fmt"
	"sort"
)

// Txn is a transaction over a fixed set of tables. SQLGraph's graph update
// operations are multi-table "stored procedures" (paper Section 4.5.2):
// adding an edge touches OPA, IPA, OSA/ISA, and EA. Txn provides the
// atomicity those procedures need: all table locks are acquired up front
// in sorted name order (deadlock freedom), every mutation is undo-logged,
// and Rollback restores the pre-transaction state exactly.
//
// Write transactions are additionally serialized on the catalog's writer
// mutex and stamped with the next version of the catalog clock; their
// commit publishes that version (see mvcc.go). Read-only transactions can
// be opened at a pinned historical version with BeginAt, in which case
// Get/Scan/Probe observe the state as of that version.
type Txn struct {
	cat     *Catalog
	write   map[string]*Table
	read    map[string]*Table
	order   []lockedTable
	undo    []undoRec
	redo    []Change // logical changes for the commit observer (nil when detached)
	garbage map[*Table][]garbageRec
	ver     Version // nonzero for write transactions: the version being written
	asOf    Version // read version for read-only transactions (Latest otherwise)
	writer  bool    // holds the catalog writer mutex
	closed  bool
}

type lockedTable struct {
	t     *Table
	write bool
}

type undoRec struct {
	table *Table
	kind  undoKind
	rid   RowID
	vals  []Value   // prior values (delete/update)
	born  Version   // prior born version (version-push update, physical delete)
	prev  *verImage // prior history chain (version-push update)
	phys  bool      // delete removed the slot physically
}

type undoKind uint8

const (
	undoInsert undoKind = iota
	undoDelete
	undoUpdate    // in-place (same-version) update
	undoUpdateVer // version-push update of a committed row
)

// Begin opens a transaction that will write the tables named in writeSet
// and only read those in readSet. Locks are taken immediately, in sorted
// name order; a name in both sets is locked for writing.
func (c *Catalog) Begin(writeSet, readSet []string) (*Txn, error) {
	fp, err := c.Footprint(writeSet, readSet)
	if err != nil {
		return nil, err
	}
	return fp.Begin(), nil
}

// Footprint is a pre-resolved transaction lock plan: table pointers and
// their deadlock-free lock order, computed once. Hot callers (the graph
// stored procedures run one per operation) build footprints at startup
// instead of re-resolving names and re-sorting per transaction.
type Footprint struct {
	cat   *Catalog
	write map[string]*Table
	read  map[string]*Table
	order []lockedTable
}

// Footprint resolves a lock plan.
func (c *Catalog) Footprint(writeSet, readSet []string) (*Footprint, error) {
	fp := &Footprint{cat: c, write: map[string]*Table{}, read: map[string]*Table{}}
	for _, name := range writeSet {
		t, ok := c.Table(name)
		if !ok {
			return nil, fmt.Errorf("rel: begin: table %s does not exist", name)
		}
		fp.write[name] = t
	}
	for _, name := range readSet {
		if _, dup := fp.write[name]; dup {
			continue
		}
		t, ok := c.Table(name)
		if !ok {
			return nil, fmt.Errorf("rel: begin: table %s does not exist", name)
		}
		fp.read[name] = t
	}
	names := make([]string, 0, len(fp.write)+len(fp.read))
	for n := range fp.write {
		names = append(names, n)
	}
	for n := range fp.read {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if t, ok := fp.write[n]; ok {
			fp.order = append(fp.order, lockedTable{t, true})
		} else {
			fp.order = append(fp.order, lockedTable{fp.read[n], false})
		}
	}
	return fp, nil
}

// Begin acquires the footprint's locks and returns a live transaction
// reading the latest state. Transactions with a write set first acquire
// the catalog writer mutex — the store has a single serialized writer —
// and are stamped with the next clock version.
func (fp *Footprint) Begin() *Txn {
	return fp.BeginAt(Latest)
}

// BeginAt is Begin with an explicit read version for read-only
// transactions: Get/Scan/Probe observe the state as of asOf (which the
// caller must have pinned via Catalog.Pin). Transactions with a write set
// always read Latest; asOf is ignored for them.
func (fp *Footprint) BeginAt(asOf Version) *Txn {
	tx := &Txn{cat: fp.cat, write: fp.write, read: fp.read, order: fp.order, asOf: asOf}
	if len(fp.write) > 0 {
		fp.cat.mvcc.writerMu.Lock()
		tx.writer = true
		tx.ver = fp.cat.nextVersion()
		tx.asOf = Latest
	}
	for _, lt := range fp.order {
		if lt.write {
			lt.t.Lock()
		} else {
			lt.t.RLock()
		}
	}
	return tx
}

// Version returns the version a write transaction is writing (zero for
// read-only transactions).
func (tx *Txn) Version() Version { return tx.ver }

func (tx *Txn) table(name string, forWrite bool) (*Table, error) {
	if t, ok := tx.write[name]; ok {
		return t, nil
	}
	if forWrite {
		return nil, fmt.Errorf("rel: txn: table %s not in write set", name)
	}
	if t, ok := tx.read[name]; ok {
		return t, nil
	}
	return nil, fmt.Errorf("rel: txn: table %s not in read set", name)
}

func (tx *Txn) addGarbage(t *Table, recs []garbageRec) {
	if len(recs) == 0 {
		return
	}
	if tx.garbage == nil {
		tx.garbage = map[*Table][]garbageRec{}
	}
	tx.garbage[t] = append(tx.garbage[t], recs...)
}

// Insert adds a row to a write-set table.
func (tx *Txn) Insert(table string, vals []Value) (RowID, error) {
	t, err := tx.table(table, true)
	if err != nil {
		return 0, err
	}
	if err := checkMutateHook(table); err != nil {
		return 0, err
	}
	rid, err := t.insertLocked(vals, tx.ver)
	if err != nil {
		return 0, err
	}
	tx.undo = append(tx.undo, undoRec{table: t, kind: undoInsert, rid: rid})
	if tx.cat.observer() != nil {
		tx.redo = append(tx.redo, Change{Table: table, Kind: ChangeInsert, New: vals})
	}
	return rid, nil
}

// Delete removes a row from a write-set table and reports whether it
// existed.
func (tx *Txn) Delete(table string, rid RowID) (bool, error) {
	t, err := tx.table(table, true)
	if err != nil {
		return false, err
	}
	if err := checkMutateHook(table); err != nil {
		return false, err
	}
	rec, garbage, ok := t.deleteLocked(rid, tx.ver)
	if !ok {
		return false, nil
	}
	rec.table = t
	tx.undo = append(tx.undo, rec)
	tx.addGarbage(t, garbage)
	if tx.cat.observer() != nil {
		tx.redo = append(tx.redo, Change{Table: table, Kind: ChangeDelete, Old: rec.vals})
	}
	return true, nil
}

// Update replaces a row in a write-set table.
func (tx *Txn) Update(table string, rid RowID, vals []Value) error {
	t, err := tx.table(table, true)
	if err != nil {
		return err
	}
	if err := checkMutateHook(table); err != nil {
		return err
	}
	rec, garbage, err := t.updateLocked(rid, vals, tx.ver)
	if err != nil {
		return err
	}
	rec.table = t
	tx.undo = append(tx.undo, rec)
	tx.addGarbage(t, garbage)
	if tx.cat.observer() != nil {
		tx.redo = append(tx.redo, Change{Table: table, Kind: ChangeUpdate, Old: rec.vals, New: vals})
	}
	return nil
}

// Get reads a row from any table in the transaction's footprint.
func (tx *Txn) Get(table string, rid RowID) ([]Value, bool, error) {
	t, err := tx.table(table, false)
	if err != nil {
		return nil, false, err
	}
	vals, ok := t.GetAt(rid, tx.asOf)
	return vals, ok, nil
}

// Scan iterates a table in the transaction's footprint.
func (tx *Txn) Scan(table string, fn func(rid RowID, vals []Value) bool) error {
	t, err := tx.table(table, false)
	if err != nil {
		return err
	}
	t.ScanAt(tx.asOf, fn)
	return nil
}

// Probe looks up rows by index key within the transaction's footprint.
func (tx *Txn) Probe(table, index string, key []Value, fn func(rid RowID, vals []Value) bool) error {
	t, err := tx.table(table, false)
	if err != nil {
		return err
	}
	for _, ix := range t.indexes {
		if ix.name == index {
			t.ProbeAt(ix, key, tx.asOf, fn)
			return nil
		}
	}
	return fmt.Errorf("rel: txn: no index %s on %s", index, table)
}

// Commit publishes the transaction's effects: the version clock advances
// to the transaction's version, deferred-cleanup records are handed to
// their tables, and all locks are released. Garbage collection then runs
// outside the locks.
func (tx *Txn) Commit() {
	if tx.closed {
		return
	}
	fireCommitHook()
	// Deliver the change list while the table write locks are still held:
	// the observer's view is exactly serialized with both other writers
	// and any stats rebuild holding a table read lock.
	if len(tx.redo) > 0 {
		if o := tx.cat.observer(); o != nil {
			o.ObserveCommit(tx.ver, tx.redo)
		}
	}
	for t, recs := range tx.garbage {
		t.addGarbageLocked(recs)
		tx.cat.noteGarbage(t)
	}
	collect := tx.ver != 0 && len(tx.garbage) > 0
	if tx.ver != 0 {
		tx.cat.advanceClock(tx.ver)
	}
	tx.release()
	if collect {
		tx.cat.runGC()
	}
}

// Rollback undoes every mutation in reverse order and releases all locks.
// The clock does not advance and no garbage is published, so it is as if
// the transaction's version was never written.
func (tx *Txn) Rollback() {
	if tx.closed {
		return
	}
	for i := len(tx.undo) - 1; i >= 0; i-- {
		rec := tx.undo[i]
		switch rec.kind {
		case undoInsert:
			rec.table.revertInsertLocked(rec.rid)
		case undoDelete:
			rec.table.revertDeleteLocked(rec)
		case undoUpdate:
			rec.table.revertUpdateLocked(rec.rid, rec.vals)
		case undoUpdateVer:
			rec.table.revertVersionUpdateLocked(rec)
		}
	}
	tx.garbage = nil
	tx.release()
}

func (tx *Txn) release() {
	if tx.closed {
		return
	}
	tx.closed = true
	tx.undo = nil
	tx.redo = nil
	tx.garbage = nil
	for i := len(tx.order) - 1; i >= 0; i-- {
		lt := tx.order[i]
		if lt.write {
			lt.t.Unlock()
		} else {
			lt.t.RUnlock()
		}
	}
	if tx.writer {
		tx.writer = false
		tx.cat.mvcc.writerMu.Unlock()
	}
}
