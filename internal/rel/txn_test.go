package rel

import (
	"sync"
	"testing"
)

func txnCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := NewCatalog()
	for _, name := range []string{"A", "B"} {
		if _, err := c.CreateTable(name, testSchema()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.CreateIndex("A_NAME", "A", false, []int{1}, "", nil); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTxnCommit(t *testing.T) {
	c := txnCatalog(t)
	tx, err := c.Begin([]string{"A", "B"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ridA, err := tx.Insert("A", []Value{NewInt(1), NewString("x"), NewFloat(0)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert("B", []Value{NewInt(2), NewString("y"), NewFloat(0)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("A", ridA, []Value{NewInt(1), NewString("x2"), NewFloat(1)}); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	a, _ := c.Table("A")
	b, _ := c.Table("B")
	if a.Live() != 1 || b.Live() != 1 {
		t.Fatalf("Live: A=%d B=%d", a.Live(), b.Live())
	}
	a.RLock()
	vals, _ := a.Get(ridA)
	a.RUnlock()
	if vals[1].Str() != "x2" {
		t.Fatalf("committed row = %v", vals)
	}
}

func TestTxnRollback(t *testing.T) {
	c := txnCatalog(t)
	a, _ := c.Table("A")
	seedRID := mustInsert(t, a, NewInt(100), NewString("seed"), NewFloat(0))

	tx, err := c.Begin([]string{"A"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert("A", []Value{NewInt(1), NewString("x"), NewFloat(0)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("A", seedRID, []Value{NewInt(100), NewString("mutated"), NewFloat(0)}); err != nil {
		t.Fatal(err)
	}
	if ok, err := tx.Delete("A", seedRID); err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	tx.Rollback()

	if a.Live() != 1 {
		t.Fatalf("Live after rollback = %d, want 1", a.Live())
	}
	a.RLock()
	vals, ok := a.Get(seedRID)
	a.RUnlock()
	if !ok || vals[1].Str() != "seed" {
		t.Fatalf("seed row after rollback = %v, %v", vals, ok)
	}
	// Index must also be restored.
	a.RLock()
	if a.Indexes()[0].CountPrefix([]Value{NewString("seed")}) != 1 {
		t.Fatal("index not restored by rollback")
	}
	if a.Indexes()[0].CountPrefix([]Value{NewString("mutated")}) != 0 {
		t.Fatal("index holds rolled-back value")
	}
	a.RUnlock()
}

func TestTxnWriteSetEnforced(t *testing.T) {
	c := txnCatalog(t)
	tx, err := c.Begin([]string{"A"}, []string{"B"})
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	if _, err := tx.Insert("B", []Value{NewInt(1), NewString("x"), NewFloat(0)}); err == nil {
		t.Fatal("insert into read-only table accepted")
	}
	if _, _, err := tx.Get("B", 0); err != nil {
		t.Fatalf("read of read-set table failed: %v", err)
	}
	if _, _, err := tx.Get("MISSING", 0); err == nil {
		t.Fatal("read outside footprint accepted")
	}
}

func TestTxnBeginMissingTable(t *testing.T) {
	c := txnCatalog(t)
	if _, err := c.Begin([]string{"NOPE"}, nil); err == nil {
		t.Fatal("Begin with missing table accepted")
	}
	if _, err := c.Begin(nil, []string{"NOPE"}); err == nil {
		t.Fatal("Begin with missing read table accepted")
	}
}

func TestTxnProbeAndScan(t *testing.T) {
	c := txnCatalog(t)
	tx, _ := c.Begin([]string{"A"}, nil)
	for i := 0; i < 5; i++ {
		if _, err := tx.Insert("A", []Value{NewInt(int64(i)), NewString("k"), NewFloat(0)}); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	if err := tx.Scan("A", func(rid RowID, vals []Value) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("Scan saw %d rows, want 5", n)
	}
	n = 0
	if err := tx.Probe("A", "A_NAME", []Value{NewString("k")}, func(rid RowID, vals []Value) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("Probe saw %d rows, want 5", n)
	}
	if err := tx.Probe("A", "NO_IX", nil, nil); err == nil {
		t.Fatal("probe on missing index accepted")
	}
	tx.Commit()
}

// TestTxnConcurrentTransfers runs many concurrent two-table transactions
// and checks the catalog is consistent afterwards: no deadlock (lock
// ordering) and no lost updates.
func TestTxnConcurrentTransfers(t *testing.T) {
	c := txnCatalog(t)
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Alternate lock-order stress: both orders in the write set.
				ws := []string{"A", "B"}
				if i%2 == 0 {
					ws = []string{"B", "A"}
				}
				tx, err := c.Begin(ws, nil)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := tx.Insert("A", []Value{NewInt(int64(w*perWorker + i)), NewString("a"), NewFloat(0)}); err != nil {
					t.Error(err)
					tx.Rollback()
					return
				}
				if _, err := tx.Insert("B", []Value{NewInt(int64(w*perWorker + i)), NewString("b"), NewFloat(0)}); err != nil {
					t.Error(err)
					tx.Rollback()
					return
				}
				if i%3 == 0 {
					tx.Rollback()
				} else {
					tx.Commit()
				}
			}
		}(w)
	}
	wg.Wait()
	a, _ := c.Table("A")
	b, _ := c.Table("B")
	committed := 0
	for i := 0; i < perWorker; i++ {
		if i%3 != 0 {
			committed++
		}
	}
	want := committed * workers
	if a.Live() != want || b.Live() != want {
		t.Fatalf("Live after concurrency: A=%d B=%d, want %d", a.Live(), b.Live(), want)
	}
}

func TestTxnDoubleCommitAndRollbackSafe(t *testing.T) {
	c := txnCatalog(t)
	tx, _ := c.Begin([]string{"A"}, nil)
	tx.Commit()
	tx.Commit()   // no-op
	tx.Rollback() // no-op
	tx2, _ := c.Begin([]string{"A"}, nil)
	tx2.Rollback()
	tx2.Rollback()
	tx2.Commit()
}
