// Package rel implements the relational storage substrate SQLGraph runs
// on: typed values, tables, B-tree indexes, a catalog, and transactional
// multi-table updates with table-granularity locking. The SQL front-end
// (internal/sql) and executor (internal/engine) sit on top of it.
package rel

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"sqlgraph/internal/sqljson"
)

// Kind enumerates the dynamic types a column value can hold. The SQLGraph
// schema needs integers (vertex/edge ids), strings (labels), JSON
// documents (VA/EA attribute columns) and lists (traversal paths tracked
// by the path-pipe translation).
type Kind uint8

const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindJSON
	KindList
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOLEAN"
	case KindInt:
		return "BIGINT"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	case KindJSON:
		return "JSON"
	case KindList:
		return "LIST"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed SQL value. The zero Value is SQL NULL.
// The layout is deliberately compact (numerics share one word, documents
// and lists share the aux slot): rows are copied throughout the executor
// and value size is directly visible in query time.
type Value struct {
	kind Kind
	num  uint64 // int64 bits (int/bool) or float64 bits (float)
	s    string
	aux  any // *sqljson.Doc for JSON, []Value for lists
}

// Null is the SQL NULL value.
var Null = Value{}

// NewBool returns a BOOLEAN value.
func NewBool(b bool) Value {
	v := Value{kind: KindBool}
	if b {
		v.num = 1
	}
	return v
}

// NewInt returns a BIGINT value.
func NewInt(i int64) Value { return Value{kind: KindInt, num: uint64(i)} }

// NewFloat returns a DOUBLE value.
func NewFloat(f float64) Value { return Value{kind: KindFloat, num: math.Float64bits(f)} }

// NewString returns a VARCHAR value.
func NewString(s string) Value { return Value{kind: KindString, s: s} }

// NewJSON returns a JSON value wrapping doc (which may be nil: an empty
// document).
func NewJSON(doc *sqljson.Doc) Value {
	if doc == nil {
		doc = sqljson.New()
	}
	return Value{kind: KindJSON, aux: doc}
}

// NewList returns a LIST value. The slice is not copied.
func NewList(vals []Value) Value {
	if vals == nil {
		vals = []Value{}
	}
	return Value{kind: KindList, aux: vals}
}

// FromAny converts a Go value (as produced by sqljson or user input) to a
// Value.
func FromAny(v any) Value {
	switch x := v.(type) {
	case nil:
		return Null
	case bool:
		return NewBool(x)
	case int:
		return NewInt(int64(x))
	case int32:
		return NewInt(int64(x))
	case int64:
		return NewInt(x)
	case float32:
		return NewFloat(float64(x))
	case float64:
		return NewFloat(x)
	case string:
		return NewString(x)
	case *sqljson.Doc:
		return NewJSON(x)
	case Value:
		return x
	case []Value:
		return NewList(x)
	case []any:
		out := make([]Value, len(x))
		for i, e := range x {
			out[i] = FromAny(e)
		}
		return NewList(out)
	default:
		return NewString(fmt.Sprint(x))
	}
}

// Kind returns the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Bool returns the boolean payload (false for non-bool values).
func (v Value) Bool() bool { return v.kind == KindBool && v.num != 0 }

// Int returns the integer payload, converting floats by truncation.
func (v Value) Int() int64 {
	switch v.kind {
	case KindInt, KindBool:
		return int64(v.num)
	case KindFloat:
		return int64(math.Float64frombits(v.num))
	case KindString:
		i, _ := strconv.ParseInt(v.s, 10, 64)
		return i
	default:
		return 0
	}
}

// Float returns the floating-point payload, converting integers.
func (v Value) Float() float64 {
	switch v.kind {
	case KindFloat:
		return math.Float64frombits(v.num)
	case KindInt, KindBool:
		return float64(int64(v.num))
	case KindString:
		f, _ := strconv.ParseFloat(v.s, 64)
		return f
	default:
		return 0
	}
}

// Str returns the string payload (empty for non-strings; use String for a
// rendered form of any value).
func (v Value) Str() string {
	if v.kind == KindString {
		return v.s
	}
	return ""
}

// JSON returns the JSON document payload, or nil for non-JSON values.
func (v Value) JSON() *sqljson.Doc {
	if v.kind == KindJSON {
		return v.aux.(*sqljson.Doc)
	}
	return nil
}

// List returns the list payload, or nil.
func (v Value) List() []Value {
	if v.kind == KindList {
		return v.aux.([]Value)
	}
	return nil
}

// String renders the value for display.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.num != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(int64(v.num), 10)
	case KindFloat:
		return strconv.FormatFloat(v.Float(), 'g', -1, 64)
	case KindString:
		return v.s
	case KindJSON:
		return v.JSON().String()
	case KindList:
		list := v.List()
		parts := make([]string, len(list))
		for i, e := range list {
			parts[i] = e.String()
		}
		return "[" + strings.Join(parts, ", ") + "]"
	default:
		return "?"
	}
}

// numeric reports whether the value participates in numeric comparison.
func (v Value) numeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Compare orders two values. NULL sorts first; values of different,
// non-numeric kinds order by kind; int and float compare numerically.
// The total order makes values usable as B-tree index keys.
func Compare(a, b Value) int {
	if a.kind == KindNull || b.kind == KindNull {
		switch {
		case a.kind == b.kind:
			return 0
		case a.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if a.numeric() && b.numeric() {
		if a.kind == KindInt && b.kind == KindInt {
			ai, bi := int64(a.num), int64(b.num)
			switch {
			case ai < bi:
				return -1
			case ai > bi:
				return 1
			default:
				return 0
			}
		}
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.kind != b.kind {
		return int(a.kind) - int(b.kind)
	}
	switch a.kind {
	case KindBool:
		return int(int64(a.num) - int64(b.num))
	case KindString:
		return strings.Compare(a.s, b.s)
	case KindJSON:
		return strings.Compare(a.JSON().String(), b.JSON().String())
	case KindList:
		al, bl := a.List(), b.List()
		n := len(al)
		if len(bl) < n {
			n = len(bl)
		}
		for i := 0; i < n; i++ {
			if c := Compare(al[i], bl[i]); c != 0 {
				return c
			}
		}
		return len(al) - len(bl)
	default:
		return 0
	}
}

// Equal reports whether two values compare equal.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Key returns a canonical string for use as a hash-map key (DISTINCT,
// GROUP BY, hash joins). Distinct values produce distinct keys; int and
// float encodings collide exactly when Compare says they are equal.
func (v Value) Key() string {
	switch v.kind {
	case KindNull:
		return "\x00"
	case KindBool:
		if v.num != 0 {
			return "\x01t"
		}
		return "\x01f"
	case KindInt:
		return "\x02i" + strconv.FormatInt(int64(v.num), 10)
	case KindFloat:
		// Integral floats share their key with the equivalent int so that
		// DISTINCT and hash joins agree with Compare on numeric equality.
		f := v.Float()
		if f == math.Trunc(f) && math.Abs(f) < 1<<53 {
			return "\x02i" + strconv.FormatInt(int64(f), 10)
		}
		return "\x02f" + strconv.FormatFloat(f, 'g', -1, 64)
	case KindString:
		return "\x03" + v.s
	case KindJSON:
		return "\x04" + v.JSON().String()
	case KindList:
		var sb strings.Builder
		sb.WriteString("\x05")
		for _, e := range v.List() {
			k := e.Key()
			sb.WriteString(strconv.Itoa(len(k)))
			sb.WriteByte(':')
			sb.WriteString(k)
		}
		return sb.String()
	default:
		return "?"
	}
}

// Size approximates the value's serialized storage footprint in bytes.
func (v Value) Size() int {
	switch v.kind {
	case KindNull:
		return 1
	case KindBool:
		return 1
	case KindInt:
		return 8
	case KindFloat:
		return 8
	case KindString:
		return len(v.s) + 4
	case KindJSON:
		return v.JSON().Size() + 4
	case KindList:
		n := 4
		for _, e := range v.List() {
			n += e.Size()
		}
		return n
	default:
		return 0
	}
}

// Truthy converts the value to a SQL condition result: NULL and false are
// false, non-zero numbers and "true" strings are true.
func (v Value) Truthy() bool {
	switch v.kind {
	case KindBool, KindInt:
		return v.num != 0
	case KindFloat:
		return v.Float() != 0
	case KindString:
		return v.s == "true"
	default:
		return false
	}
}
