package rel

import (
	"testing"
	"testing/quick"

	"sqlgraph/internal/sqljson"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null.IsNull() {
		t.Fatal("Null not null")
	}
	if v := NewInt(42); v.Int() != 42 || v.Kind() != KindInt {
		t.Fatalf("NewInt: %v", v)
	}
	if v := NewFloat(2.5); v.Float() != 2.5 {
		t.Fatalf("NewFloat: %v", v)
	}
	if v := NewString("x"); v.Str() != "x" {
		t.Fatalf("NewString: %v", v)
	}
	if v := NewBool(true); !v.Bool() {
		t.Fatalf("NewBool: %v", v)
	}
	doc := sqljson.New()
	doc.Set("a", 1)
	if v := NewJSON(doc); v.JSON().Len() != 1 {
		t.Fatalf("NewJSON: %v", v)
	}
	if v := NewJSON(nil); v.JSON() == nil {
		t.Fatal("NewJSON(nil) should wrap empty doc")
	}
	if v := NewList([]Value{NewInt(1)}); len(v.List()) != 1 {
		t.Fatalf("NewList: %v", v)
	}
}

func TestValueConversions(t *testing.T) {
	if NewFloat(3.9).Int() != 3 {
		t.Fatal("float->int truncation")
	}
	if NewInt(3).Float() != 3.0 {
		t.Fatal("int->float")
	}
	if NewString("17").Int() != 17 {
		t.Fatal("string->int")
	}
	if NewString("2.5").Float() != 2.5 {
		t.Fatal("string->float")
	}
	if Null.Int() != 0 || Null.Float() != 0 {
		t.Fatal("null numeric conversions")
	}
}

func TestFromAny(t *testing.T) {
	cases := []struct {
		in   any
		kind Kind
	}{
		{nil, KindNull},
		{true, KindBool},
		{5, KindInt},
		{int64(5), KindInt},
		{int32(5), KindInt},
		{2.5, KindFloat},
		{float32(2.5), KindFloat},
		{"s", KindString},
		{sqljson.New(), KindJSON},
		{[]any{1, 2}, KindList},
		{[]Value{NewInt(1)}, KindList},
		{NewInt(9), KindInt},
	}
	for _, c := range cases {
		if got := FromAny(c.in).Kind(); got != c.kind {
			t.Fatalf("FromAny(%v).Kind = %v, want %v", c.in, got, c.kind)
		}
	}
}

func TestCompare(t *testing.T) {
	ordered := []Value{
		Null,
		NewBool(false),
		NewBool(true),
		NewInt(-5),
		NewInt(0),
		NewFloat(0.5),
		NewInt(1),
		NewFloat(1.5),
		NewInt(100),
		NewString("a"),
		NewString("b"),
	}
	for i := range ordered {
		for j := range ordered {
			c := Compare(ordered[i], ordered[j])
			switch {
			case i < j && c >= 0:
				t.Fatalf("Compare(%v,%v) = %d, want <0", ordered[i], ordered[j], c)
			case i > j && c <= 0:
				t.Fatalf("Compare(%v,%v) = %d, want >0", ordered[i], ordered[j], c)
			case i == j && c != 0:
				t.Fatalf("Compare(%v,%v) = %d, want 0", ordered[i], ordered[j], c)
			}
		}
	}
	if Compare(NewInt(2), NewFloat(2.0)) != 0 {
		t.Fatal("int/float numeric equality")
	}
	if !Equal(NewInt(2), NewFloat(2.0)) {
		t.Fatal("Equal cross-numeric")
	}
}

func TestCompareLists(t *testing.T) {
	a := NewList([]Value{NewInt(1), NewInt(2)})
	b := NewList([]Value{NewInt(1), NewInt(3)})
	c := NewList([]Value{NewInt(1)})
	if Compare(a, b) >= 0 || Compare(b, a) <= 0 {
		t.Fatal("list element order")
	}
	if Compare(c, a) >= 0 {
		t.Fatal("shorter list should sort first")
	}
	if Compare(a, a) != 0 {
		t.Fatal("list self-compare")
	}
}

func TestKeyAgreesWithCompare(t *testing.T) {
	vals := []Value{
		Null, NewBool(true), NewBool(false),
		NewInt(5), NewFloat(5.0), NewFloat(5.5), NewInt(-5),
		NewString("5"), NewString(""),
		NewList([]Value{NewInt(5)}), NewList(nil),
	}
	for _, a := range vals {
		for _, b := range vals {
			eq := Compare(a, b) == 0
			keq := a.Key() == b.Key()
			if eq != keq {
				t.Fatalf("Key/Compare disagree for %v vs %v: eq=%v keyEq=%v", a, b, eq, keq)
			}
		}
	}
}

func TestQuickKeyCompareAgreement(t *testing.T) {
	f := func(a, b int64, fa, fb float64) bool {
		pairs := []struct{ x, y Value }{
			{NewInt(a), NewInt(b)},
			{NewInt(a), NewFloat(fb)},
			{NewFloat(fa), NewFloat(fb)},
		}
		for _, p := range pairs {
			if (Compare(p.x, p.y) == 0) != (p.x.Key() == p.y.Key()) {
				// Known residual: ints beyond 2^53 that collide with a float
				// under float conversion. Exclude that corner.
				if a > 1<<53 || a < -(1<<53) || b > 1<<53 || b < -(1<<53) {
					continue
				}
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTruthy(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
	}{
		{Null, false},
		{NewBool(true), true},
		{NewBool(false), false},
		{NewInt(0), false},
		{NewInt(1), true},
		{NewFloat(0), false},
		{NewFloat(0.1), true},
		{NewString("true"), true},
		{NewString("yes"), false},
	}
	for _, c := range cases {
		if got := c.v.Truthy(); got != c.want {
			t.Fatalf("Truthy(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewBool(true), "true"},
		{NewInt(-7), "-7"},
		{NewFloat(2.5), "2.5"},
		{NewString("hi"), "hi"},
		{NewList([]Value{NewInt(1), NewString("a")}), "[1, a]"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Fatalf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestValueSize(t *testing.T) {
	if NewString("hello").Size() <= len("hi") {
		t.Fatal("string size too small")
	}
	if NewList([]Value{NewInt(1), NewInt(2)}).Size() <= NewInt(1).Size() {
		t.Fatal("list size should exceed element size")
	}
	if Null.Size() <= 0 || NewBool(true).Size() <= 0 {
		t.Fatal("sizes must be positive")
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindNull: "NULL", KindBool: "BOOLEAN", KindInt: "BIGINT",
		KindFloat: "DOUBLE", KindString: "VARCHAR", KindJSON: "JSON", KindList: "LIST",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %s, want %s", k, k, want)
		}
	}
}
