package server

import (
	"context"
	"errors"
	"sync"
)

// Admission errors. Handlers translate ErrSaturated into 429 with a
// Retry-After hint and ErrShuttingDown into 503.
var (
	ErrSaturated    = errors.New("server: admission queue full")
	ErrShuttingDown = errors.New("server: shutting down")
)

// admission bounds the number of in-flight queries. Up to limit requests
// run concurrently; up to maxQueue more wait in FIFO order for a slot.
// Anything beyond that is rejected immediately (the caller answers 429)
// so saturation produces fast, bounded back-pressure instead of a pile
// of blocked goroutines.
type admission struct {
	mu       sync.Mutex
	limit    int
	maxQueue int
	inflight int
	queue    []*waiter
	closed   bool
}

// waiter is one queued request. granted/abandoned are guarded by the
// admission mutex; ch is closed exactly once, under that mutex, either
// to hand the waiter a slot (granted) or to wake it for rejection.
type waiter struct {
	ch        chan struct{}
	granted   bool
	abandoned bool
}

func newAdmission(limit, maxQueue int) *admission {
	return &admission{limit: limit, maxQueue: maxQueue}
}

// Acquire blocks until the request is admitted, the context ends, or the
// controller rejects it. On nil return the caller holds one slot and
// must Release it exactly once.
func (a *admission) Acquire(ctx context.Context) error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return ErrShuttingDown
	}
	if a.inflight < a.limit {
		a.inflight++
		a.mu.Unlock()
		return nil
	}
	if len(a.queue) >= a.maxQueue {
		a.mu.Unlock()
		return ErrSaturated
	}
	w := &waiter{ch: make(chan struct{})}
	a.queue = append(a.queue, w)
	a.mu.Unlock()

	select {
	case <-w.ch:
		a.mu.Lock()
		granted := w.granted
		a.mu.Unlock()
		if !granted {
			return ErrShuttingDown
		}
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		if w.granted {
			// The grant raced with cancellation: we own a slot we will
			// never use, so pass it to the next waiter.
			a.mu.Unlock()
			a.Release()
		} else {
			w.abandoned = true
			a.mu.Unlock()
		}
		return ctx.Err()
	}
}

// Release frees one slot, handing it to the oldest live waiter (FIFO) if
// any is queued.
func (a *admission) Release() {
	a.mu.Lock()
	defer a.mu.Unlock()
	for len(a.queue) > 0 {
		w := a.queue[0]
		a.queue = a.queue[1:]
		if w.abandoned {
			continue
		}
		// Transfer the slot: inflight stays constant.
		w.granted = true
		close(w.ch)
		return
	}
	if a.inflight > 0 {
		a.inflight--
	}
}

// InFlight reports the number of admitted requests.
func (a *admission) InFlight() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight
}

// Queued reports the number of live queued waiters.
func (a *admission) Queued() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, w := range a.queue {
		if !w.abandoned {
			n++
		}
	}
	return n
}

// Close starts shutdown: new Acquire calls fail with ErrShuttingDown and
// queued waiters are woken rejected. Already-admitted requests keep
// their slots and finish normally.
func (a *admission) Close() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return
	}
	a.closed = true
	for _, w := range a.queue {
		if !w.abandoned {
			close(w.ch) // granted stays false: rejection
		}
	}
	a.queue = nil
}
