package server

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"sqlgraph/internal/core"
)

// TestAdmissionBasic: slots are granted up to the limit, the queue
// absorbs the next wave, and everything past that is rejected
// immediately.
func TestAdmissionBasic(t *testing.T) {
	a := newAdmission(2, 1)
	ctx := context.Background()
	if err := a.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := a.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if got := a.InFlight(); got != 2 {
		t.Fatalf("inflight: %d", got)
	}
	// Third caller queues; fourth is rejected.
	queued := make(chan error, 1)
	go func() { queued <- a.Acquire(ctx) }()
	waitFor(t, func() bool { return a.Queued() == 1 })
	if err := a.Acquire(ctx); !errors.Is(err, ErrSaturated) {
		t.Fatalf("want ErrSaturated, got %v", err)
	}
	a.Release()
	if err := <-queued; err != nil {
		t.Fatalf("queued caller: %v", err)
	}
	if got := a.InFlight(); got != 2 {
		t.Fatalf("inflight after handoff: %d", got)
	}
	a.Release()
	a.Release()
	if got := a.InFlight(); got != 0 {
		t.Fatalf("inflight after drain: %d", got)
	}
}

// TestAdmissionFIFO: queued waiters are granted strictly in arrival
// order as slots free up.
func TestAdmissionFIFO(t *testing.T) {
	const waiters = 8
	a := newAdmission(1, waiters)
	ctx := context.Background()
	if err := a.Acquire(ctx); err != nil {
		t.Fatal(err)
	}

	order := make(chan int, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		// Enqueue one at a time so arrival order is deterministic.
		wg.Add(1)
		ready := make(chan struct{})
		go func(i int) {
			defer wg.Done()
			close(ready)
			if err := a.Acquire(ctx); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order <- i
			a.Release()
		}(i)
		<-ready
		waitFor(t, func() bool { return a.Queued() == i+1 })
	}

	a.Release() // start the chain: each waiter releases to the next
	wg.Wait()
	close(order)
	want := 0
	for got := range order {
		if got != want {
			t.Fatalf("FIFO violated: got waiter %d, want %d", got, want)
		}
		want++
	}
	if a.InFlight() != 0 {
		t.Fatalf("inflight after drain: %d", a.InFlight())
	}
}

// TestAdmissionContextCancelWhileQueued: a waiter that gives up leaves
// the queue without consuming a slot or blocking later grants.
func TestAdmissionContextCancelWhileQueued(t *testing.T) {
	a := newAdmission(1, 4)
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- a.Acquire(ctx) }()
	waitFor(t, func() bool { return a.Queued() == 1 })
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	waitFor(t, func() bool { return a.Queued() == 0 })
	a.Release()
	if a.InFlight() != 0 {
		t.Fatalf("inflight: %d", a.InFlight())
	}
	// The slot is usable again.
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	a.Release()
}

// TestAdmissionShutdown: Close rejects new arrivals and queued waiters
// but lets admitted work finish.
func TestAdmissionShutdown(t *testing.T) {
	a := newAdmission(1, 4)
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() { queued <- a.Acquire(context.Background()) }()
	waitFor(t, func() bool { return a.Queued() == 1 })

	a.Close()
	if err := <-queued; !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("queued waiter during shutdown: want ErrShuttingDown, got %v", err)
	}
	if err := a.Acquire(context.Background()); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("new arrival during shutdown: want ErrShuttingDown, got %v", err)
	}
	// The admitted request completes normally.
	a.Release()
	if a.InFlight() != 0 {
		t.Fatalf("inflight after release: %d", a.InFlight())
	}
}

// TestSaturation429 drives admission end-to-end over HTTP: with one
// slot and no queue, a request blocked behind a held table lock
// saturates the server, and the next request gets 429 + Retry-After.
func TestSaturation429(t *testing.T) {
	env := newTestEnv(t, Config{MaxInFlight: 1, MaxQueue: 1, RetryAfter: 7 * time.Second})

	// Occupy the single slot with a mutation blocked on a table lock.
	tx, err := env.store.Catalog().Begin([]string{core.TableVA}, nil)
	if err != nil {
		t.Fatal(err)
	}
	blocked := make(chan struct{})
	go func() {
		defer close(blocked)
		env.doJSON(t, "POST", "/vertex?timeout_ms=3000", vertexBody{ID: 77})
	}()
	waitFor(t, func() bool { return env.srv.InFlight() == 1 })

	// Second request fills the queue (it will block), third gets 429.
	queuedDone := make(chan struct{})
	go func() {
		defer close(queuedDone)
		env.doJSON(t, "POST", "/query?timeout_ms=3000", map[string]any{"gremlin": "g.V.count"})
	}()
	waitFor(t, func() bool { return env.srv.adm.Queued() == 1 })

	req, _ := http.NewRequest("POST", env.ts.URL+"/query", strings.NewReader(`{"gremlin":"g.V.count"}`))
	resp, err := env.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("want 429, got %d", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Fatalf("Retry-After: %q", ra)
	}

	tx.Rollback() // unblock; the queued query drains FIFO afterwards
	<-blocked
	<-queuedDone
	waitFor(t, func() bool { return env.srv.InFlight() == 0 })
}

// waitFor polls until cond is true or the test deadline passes.
func waitFor(t testing.TB, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
