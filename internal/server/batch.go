package server

import (
	"fmt"
	"net/http"

	"sqlgraph/internal/core"
	"sqlgraph/internal/wal"
)

// batchOp is one operation of a POST /batch request. Exactly the fields
// its op kind needs are read; the rest are ignored.
type batchOp struct {
	Op    string         `json:"op"`
	ID    int64          `json:"id"`
	From  int64          `json:"from,omitempty"`
	To    int64          `json:"to,omitempty"`
	Label string         `json:"label,omitempty"`
	Key   string         `json:"key,omitempty"`
	Value any            `json:"value,omitempty"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

type batchRequest struct {
	Ops []batchOp `json:"ops"`
}

// record converts the wire op into its WAL record.
func (o batchOp) record() (wal.Record, error) {
	switch o.Op {
	case "add_vertex":
		return core.BatchAddVertex(o.ID, o.Attrs), nil
	case "remove_vertex":
		return core.BatchRemoveVertex(o.ID), nil
	case "add_edge":
		return core.BatchAddEdge(o.ID, o.From, o.To, o.Label, o.Attrs), nil
	case "remove_edge":
		return core.BatchRemoveEdge(o.ID), nil
	case "set_vertex_attr":
		return core.BatchSetVertexAttr(o.ID, o.Key, o.Value), nil
	case "remove_vertex_attr":
		return core.BatchRemoveVertexAttr(o.ID, o.Key), nil
	case "set_edge_attr":
		return core.BatchSetEdgeAttr(o.ID, o.Key, o.Value), nil
	case "remove_edge_attr":
		return core.BatchRemoveEdgeAttr(o.ID, o.Key), nil
	default:
		return wal.Record{}, fmt.Errorf("unknown batch op %q (want add_vertex, remove_vertex, add_edge, remove_edge, set_vertex_attr, remove_vertex_attr, set_edge_attr, remove_edge_attr)", o.Op)
	}
}

// handleBatch (POST /batch) applies many mutations under one writer
// acquisition and one WAL flush via Store.ApplyBatch. The batch is
// atomic: any failing op rolls the whole request back with nothing
// applied, and the error names the offending op index.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var body batchRequest
	if !s.decode(w, r, &body) {
		return
	}
	if len(body.Ops) == 0 {
		writeError(w, http.StatusBadRequest, "batch needs at least one op")
		return
	}
	recs := make([]wal.Record, len(body.Ops))
	for i, op := range body.Ops {
		rec, err := op.record()
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("op %d: %v", i, err))
			return
		}
		recs[i] = rec
	}
	s.run(w, r, func() (any, int, error) {
		if err := s.st().ApplyBatch(recs); err != nil {
			return nil, statusFor(err), err
		}
		return map[string]any{"applied": len(recs)}, http.StatusOK, nil
	})
}
