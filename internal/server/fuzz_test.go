package server

import (
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"sqlgraph/internal/core"
)

// fuzzServer is shared across fuzz iterations: the decoder and query
// path are stateless per request, and rebuilding the store per input
// would make fuzzing useless.
var (
	fuzzOnce    sync.Once
	fuzzHandler http.Handler
)

func fuzzSetup(t testing.TB) http.Handler {
	fuzzOnce.Do(func() {
		store, err := core.Load(figure2a(t), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		srv := New(store, Config{ErrorLog: log.New(io.Discard, "", 0)})
		fuzzHandler = srv.Handler()
	})
	return fuzzHandler
}

// FuzzServerRequest fuzzes the JSON request decoder and the Gremlin
// query endpoint: any byte sequence posted to /query must produce a
// well-formed non-5xx response — parse and translation failures are the
// client's fault (4xx), and nothing may panic (a panic would surface as
// a 500 via the recovery middleware and fail here).
//
// Inputs starting with "GET /debug/" are instead routed as GET requests
// to the debug surface (/debug/events, /debug/history and friends), so
// the fuzzer also hammers the observability endpoints' query-string
// parsing. Those responses may be text/plain (?format=text), so the
// JSON content-type invariant only applies to the POST /query path.
//
// Crashers found by fuzzing are committed under
// testdata/fuzz/FuzzServerRequest and replayed by `go test -run
// FuzzServerRequest` as regression seeds.
func FuzzServerRequest(f *testing.F) {
	seeds := []string{
		`{"gremlin":"g.V.count"}`,
		`{"gremlin":"g.V.has('name', 'marko').out('knows').name"}`,
		`{"gremlin":"g.V(1).out('knows').out('created').path"}`,
		`{"gremlin":"g.V.filter{it.age > 27}.count()"}`,
		`{"gremlin":"g.E.has('weight', T.gt, 0.5).count()"}`,
		`{"gremlin":"g.V.both.dedup().count()","explain":true}`,
		`{"gremlin":"g.V.count","session":"0123456789abcdef0123456789abcdef"}`,
		`{"gremlin":"g.V.count","options":{"force_ea":true}}`,
		`{"gremlin":"g.V.count","options":{"force_hash_tables":true,"recursive_loops":true}}`,
		`{"gremlin":""}`,
		`{"gremlin":"g.V.has('name',"}`,
		`{"gremlin":"g.nope.nope"}`,
		`{"gremlin":"g.V.loop(3){it.loops < 2}.name"}`,
		`{"gremlin":"g.V.out.out.out.out.out.count"}`,
		"{\"gremlin\":\"\x00\xff\"}",
		`{"gremlin":42}`,
		`{"gremlin":"g.V.count","unknown_field":1}`,
		`{`,
		``,
		`null`,
		`[{"gremlin":"g.V.count"}]`,
		`{"gremlin":"g.V.has('name', 'marko')"}`,
		strings.Repeat(`{"gremlin":"g.V.count"}`, 100),
		"GET /debug/events",
		"GET /debug/events?format=text",
		"GET /debug/events?format=%00%ff",
		"GET /debug/history",
		"GET /debug/history?window=1s",
		"GET /debug/history?window=-5m",
		"GET /debug/history?window=banana",
		"GET /debug/history?window=9999999h&window=1s",
		"GET /debug/queries?kind=slow&limit=nope",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		h := fuzzSetup(t)
		if target, ok := strings.CutPrefix(string(body), "GET /debug/"); ok {
			target = "/debug/" + target
			// Only well-formed request targets reach a real server; skip
			// the rest rather than fight httptest.NewRequest's panic.
			if !validRequestTarget(target) {
				t.Skip()
			}
			req := httptest.NewRequest("GET", target, nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code >= 500 {
				t.Fatalf("GET %q produced %d: %s", target, rec.Code, rec.Body)
			}
			return
		}
		req := httptest.NewRequest("POST", "/query", strings.NewReader(string(body)))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code >= 500 {
			t.Fatalf("request %q produced %d: %s", body, rec.Code, rec.Body)
		}
		if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("non-JSON response %q for %q", ct, body)
		}
	})
}

// validRequestTarget reports whether target parses as an origin-form
// request URI that httptest.NewRequest will accept without panicking.
func validRequestTarget(target string) bool {
	u, err := url.ParseRequestURI(target)
	return err == nil && u.Path != "" && !strings.ContainsAny(target, " \x00\n\r")
}
