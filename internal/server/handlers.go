package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"sqlgraph/internal/blueprints"
	"sqlgraph/internal/core"
	"sqlgraph/internal/metrics"
	"sqlgraph/internal/trace"
	"sqlgraph/internal/translate"
)

// ---- request/response shapes --------------------------------------------

// queryOptions mirrors the translation options at the wire.
type queryOptions struct {
	ForceEA         bool `json:"force_ea,omitempty"`
	ForceHashTables bool `json:"force_hash_tables,omitempty"`
	RecursiveLoops  bool `json:"recursive_loops,omitempty"`
}

func (o queryOptions) internal() translate.Options {
	return translate.Options{ForceEA: o.ForceEA, ForceHashTables: o.ForceHashTables, RecursiveLoops: o.RecursiveLoops}
}

// queryRequest is the /query (and /translate) body.
type queryRequest struct {
	Gremlin string       `json:"gremlin"`
	Session string       `json:"session,omitempty"`
	Options queryOptions `json:"options,omitempty"`
	Explain bool         `json:"explain,omitempty"`
}

// queryResponse is the /query result. Version is the MVCC version the
// query read at; TraceID names the trace retained at /debug/queries/{id}.
// The explain fields (SQL, Plan, PlanText, Stats) are populated only
// when the request sets "explain": the translated SQL, the timed span
// tree (EXPLAIN ANALYZE as JSON), its pretty-printed text form, and the
// legacy executor-stats string.
type queryResponse struct {
	Count    int          `json:"count"`
	Values   []any        `json:"values"`
	Version  uint64       `json:"version"`
	TraceID  string       `json:"trace_id,omitempty"`
	SQL      string       `json:"sql,omitempty"`
	Plan     *trace.Trace `json:"plan,omitempty"`
	PlanText string       `json:"plan_text,omitempty"`
	Stats    string       `json:"stats,omitempty"`
}

type translateResponse struct {
	SQL      string `json:"sql"`
	ElemType string `json:"elem_type"`
}

type sessionResponse struct {
	Session string `json:"session"`
	Version uint64 `json:"version"`
	TTLMs   int64  `json:"ttl_ms"`
}

type vertexBody struct {
	ID    int64          `json:"id"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

type edgeBody struct {
	ID    int64          `json:"id"`
	From  int64          `json:"from"`
	To    int64          `json:"to"`
	Label string         `json:"label"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

type attrPatch struct {
	Set    map[string]any `json:"set,omitempty"`
	Remove []string       `json:"remove,omitempty"`
}

type edgeList struct {
	Count int        `json:"count"`
	Edges []edgeBody `json:"edges"`
}

// ---- decoding helpers ---------------------------------------------------

// decode reads a JSON body, answering 413 for oversized bodies and 400
// for anything unparsable. Unknown fields are rejected so typos fail
// loudly instead of silently running with defaults.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", mbe.Limit))
		} else {
			writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		}
		return false
	}
	return true
}

// pathID parses the {id} path segment.
func pathID(w http.ResponseWriter, r *http.Request) (int64, bool) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad id: "+r.PathValue("id"))
		return 0, false
	}
	return id, true
}

// readView is the slice of the point-read API shared by the live store
// and a pinned snapshot.
type readView interface {
	VertexExists(int64) bool
	VertexAttrs(int64) (map[string]any, error)
	Edge(int64) (blueprints.EdgeRec, error)
	EdgeAttrs(int64) (map[string]any, error)
	OutEdges(int64, ...string) ([]blueprints.EdgeRec, error)
	InEdges(int64, ...string) ([]blueprints.EdgeRec, error)
}

// acquireRead resolves the view a read request runs on: the session's
// pinned snapshot when ?session= names one, otherwise a fresh snapshot
// pinned for just this request. release must be called when done.
func (s *Server) acquireRead(r *http.Request) (view readView, release func(), err error) {
	if id := r.URL.Query().Get("session"); id != "" {
		sess, err := s.sess.Acquire(id)
		if err != nil {
			return nil, nil, err
		}
		return sess.snap, func() { s.sess.Done(sess) }, nil
	}
	snap := s.st().Snapshot()
	return snap, snap.Close, nil
}

// ---- health, metrics, stats ---------------------------------------------

// handleHealth answers liveness plus role detail. The body stays a
// single small JSON object and always carries "status":"ok" with a 200,
// so load-balancer probes that just match the status line or the "ok"
// token keep their fast path; orchestration that cares about roles
// reads the rest. A degraded follower is still "ok" — it serves reads —
// with its staleness spelled out in lag_seconds/connected.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{"status": "ok"}
	if rep := s.replica.Load(); rep != nil {
		st := rep.Status()
		body["role"] = "replica"
		body["primary"] = st.Primary
		body["state"] = st.State
		body["connected"] = st.Connected
		body["applied_lsn"] = st.AppliedLSN
		body["primary_lsn"] = st.PrimaryLSN
		body["lag_seconds"] = st.LagSeconds
	} else {
		body["role"] = "primary"
		body["applied_lsn"] = s.st().AppliedLSN()
		body["durable"] = s.st().Dir() != ""
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	w.WriteHeader(http.StatusOK)
	s.met.write(w)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.run(w, r, func() (any, int, error) {
		out, in, va, err := s.st().Stats()
		if err != nil {
			return nil, statusFor(err), err
		}
		return map[string]any{
			"hash_tables":      map[string]any{"out": out.String(), "in": in.String()},
			"vertex_attr_rows": va.Rows,
			"vertices":         s.st().CountVertices(),
			"edges":            s.st().CountEdges(),
			"bytes":            s.st().TotalBytes(),
			"pinned_snapshots": s.st().PinnedSnapshots(),
			"sessions_open":    s.sess.Open(),
			"version":          uint64(s.st().Catalog().CurrentVersion()),
			"optimizer":        s.st().OptimizerStats().Describe(16),
		}, http.StatusOK, nil
	})
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	s.run(w, r, func() (any, int, error) {
		vs := core.Check(s.st())
		out := make([]string, len(vs))
		for i, v := range vs {
			out[i] = v.String()
		}
		return map[string]any{"violations": out, "healthy": len(out) == 0}, http.StatusOK, nil
	})
}

func (s *Server) handleVacuum(w http.ResponseWriter, r *http.Request) {
	s.run(w, r, func() (any, int, error) {
		n, err := s.st().Vacuum()
		if err != nil {
			return nil, statusFor(err), err
		}
		return map[string]any{"removed": n}, http.StatusOK, nil
	})
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	s.run(w, r, func() (any, int, error) {
		if err := s.st().Checkpoint(); err != nil {
			return nil, statusFor(err), err
		}
		return map[string]any{"checkpointed": true}, http.StatusOK, nil
	})
}

// ---- trace inspection ---------------------------------------------------

// debugQueriesResponse is the GET /debug/queries body: recent query and
// write traces plus the slow-query log, all newest first.
type debugQueriesResponse struct {
	Recent    []*trace.Trace `json:"recent"`
	Slow      []*trace.Trace `json:"slow"`
	Writes    []*trace.Trace `json:"writes"`
	SlowCount uint64         `json:"slow_count"`
}

func (s *Server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	rec := s.st().Tracer()
	writeJSON(w, http.StatusOK, debugQueriesResponse{
		Recent:    rec.Queries(),
		Slow:      rec.Slow(),
		Writes:    rec.Writes(),
		SlowCount: rec.SlowCount(),
	})
}

func (s *Server) handleDebugQueryGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	t := s.st().Tracer().Get(id)
	if t == nil {
		writeError(w, http.StatusNotFound, "no retained trace with id "+id)
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, t.Text())
		return
	}
	writeJSON(w, http.StatusOK, t)
}

// debugEventsResponse is the GET /debug/events body: retained lifecycle
// events newest first, plus the total ever recorded (so a reader can
// tell when the ring has evicted).
type debugEventsResponse struct {
	Events []metrics.Event `json:"events"`
	Total  uint64          `json:"total"`
}

func (s *Server) handleDebugEvents(w http.ResponseWriter, r *http.Request) {
	evs := s.events.Events()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		for _, e := range evs {
			fmt.Fprintln(w, e.Text())
		}
		return
	}
	writeJSON(w, http.StatusOK, debugEventsResponse{Events: evs, Total: s.events.Total()})
}

// debugHistoryResponse is the GET /debug/history body: sampler metadata
// plus the retained samples inside the requested window, oldest first.
type debugHistoryResponse struct {
	IntervalMs float64          `json:"interval_ms"`
	Retention  int              `json:"retention"`
	Samples    []metrics.Sample `json:"samples"`
}

func (s *Server) handleDebugHistory(w http.ResponseWriter, r *http.Request) {
	if s.sampler == nil {
		writeError(w, http.StatusNotFound, "history sampling is disabled")
		return
	}
	var window time.Duration
	if raw := r.URL.Query().Get("window"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad window: "+raw)
			return
		}
		window = d
	}
	writeJSON(w, http.StatusOK, debugHistoryResponse{
		IntervalMs: float64(s.sampler.Interval()) / float64(time.Millisecond),
		Retention:  s.sampler.Retention(),
		Samples:    s.sampler.History(window),
	})
}

// ---- query & translate --------------------------------------------------

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.decode(w, r, &req) {
		return
	}
	traceID := ""
	if st := stateFrom(r.Context()); st != nil {
		traceID = st.traceID
	}
	s.run(w, r, func() (any, int, error) {
		var (
			res *core.Result
			ver uint64
			err error
		)
		if req.Session != "" {
			sess, aerr := s.sess.Acquire(req.Session)
			if aerr != nil {
				return nil, statusFor(aerr), aerr
			}
			defer s.sess.Done(sess)
			ver = sess.snap.Version()
			res, err = sess.snap.QueryTraced(req.Gremlin, req.Options.internal(), traceID)
		} else {
			snap := s.st().Snapshot()
			defer snap.Close()
			ver = snap.Version()
			res, err = snap.QueryTraced(req.Gremlin, req.Options.internal(), traceID)
		}
		if err != nil {
			s.met.observeExec(nil, err)
			return nil, statusFor(err), err
		}
		s.met.observeExec(&res.Stats, nil)
		s.met.observeTrace(res.Trace)
		vals := res.Values
		if vals == nil {
			vals = []any{}
		}
		resp := queryResponse{Count: len(vals), Values: vals, Version: ver}
		if tr := res.Trace; tr != nil {
			resp.TraceID = tr.ID
			if req.Explain {
				resp.SQL = tr.SQL
				resp.Plan = tr
				resp.PlanText = tr.Text()
				resp.Stats = res.Stats.String()
			}
		}
		return resp, http.StatusOK, nil
	})
}

func (s *Server) handleTranslate(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.decode(w, r, &req) {
		return
	}
	s.run(w, r, func() (any, int, error) {
		tr, err := s.st().Translate(req.Gremlin, req.Options.internal())
		if err != nil {
			return nil, statusFor(err), err
		}
		return translateResponse{SQL: tr.SQL, ElemType: tr.ElemType.String()}, http.StatusOK, nil
	})
}

// ---- sessions -----------------------------------------------------------

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	s.run(w, r, func() (any, int, error) {
		sess, err := s.sess.Create(s.st())
		if err != nil {
			return nil, statusFor(err), err
		}
		return sessionResponse{Session: sess.id, Version: sess.snap.Version(), TTLMs: s.cfg.SessionTTL.Milliseconds()},
			http.StatusCreated, nil
	})
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.run(w, r, func() (any, int, error) {
		sess, err := s.sess.Acquire(id)
		if err != nil {
			return nil, statusFor(err), err
		}
		defer s.sess.Done(sess)
		return sessionResponse{Session: sess.id, Version: sess.snap.Version(), TTLMs: s.cfg.SessionTTL.Milliseconds()},
			http.StatusOK, nil
	})
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.run(w, r, func() (any, int, error) {
		if err := s.sess.Close(id); err != nil {
			return nil, statusFor(err), err
		}
		return map[string]any{"closed": id}, http.StatusOK, nil
	})
}

// ---- point reads --------------------------------------------------------

func (s *Server) handleVertexGet(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	s.run(w, r, func() (any, int, error) {
		view, release, err := s.acquireRead(r)
		if err != nil {
			return nil, statusFor(err), err
		}
		defer release()
		attrs, err := view.VertexAttrs(id)
		if err != nil {
			return nil, statusFor(err), err
		}
		return vertexBody{ID: id, Attrs: attrs}, http.StatusOK, nil
	})
}

func (s *Server) handleVertexEdges(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	var labels []string
	if l := r.URL.Query().Get("label"); l != "" {
		labels = []string{l}
	}
	outgoing := r.URL.Path[len(r.URL.Path)-4:] == "/out"
	s.run(w, r, func() (any, int, error) {
		view, release, err := s.acquireRead(r)
		if err != nil {
			return nil, statusFor(err), err
		}
		defer release()
		var recs []blueprints.EdgeRec
		if outgoing {
			recs, err = view.OutEdges(id, labels...)
		} else {
			recs, err = view.InEdges(id, labels...)
		}
		if err != nil {
			return nil, statusFor(err), err
		}
		list := edgeList{Count: len(recs), Edges: make([]edgeBody, len(recs))}
		for i, rec := range recs {
			list.Edges[i] = edgeBody{ID: rec.ID, From: rec.Out, To: rec.In, Label: rec.Label}
		}
		return list, http.StatusOK, nil
	})
}

func (s *Server) handleEdgeGet(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	s.run(w, r, func() (any, int, error) {
		view, release, err := s.acquireRead(r)
		if err != nil {
			return nil, statusFor(err), err
		}
		defer release()
		rec, err := view.Edge(id)
		if err != nil {
			return nil, statusFor(err), err
		}
		attrs, err := view.EdgeAttrs(id)
		if err != nil {
			return nil, statusFor(err), err
		}
		return edgeBody{ID: rec.ID, From: rec.Out, To: rec.In, Label: rec.Label, Attrs: attrs}, http.StatusOK, nil
	})
}

// ---- mutations ----------------------------------------------------------

func (s *Server) handleVertexAdd(w http.ResponseWriter, r *http.Request) {
	var body vertexBody
	if !s.decode(w, r, &body) {
		return
	}
	s.run(w, r, func() (any, int, error) {
		if err := s.st().AddVertex(body.ID, body.Attrs); err != nil {
			return nil, statusFor(err), err
		}
		return vertexBody{ID: body.ID, Attrs: body.Attrs}, http.StatusCreated, nil
	})
}

func (s *Server) handleVertexDelete(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	s.run(w, r, func() (any, int, error) {
		if err := s.st().RemoveVertex(id); err != nil {
			return nil, statusFor(err), err
		}
		return map[string]any{"removed": id}, http.StatusOK, nil
	})
}

func (s *Server) handleEdgeAdd(w http.ResponseWriter, r *http.Request) {
	var body edgeBody
	if !s.decode(w, r, &body) {
		return
	}
	s.run(w, r, func() (any, int, error) {
		if err := s.st().AddEdge(body.ID, body.From, body.To, body.Label, body.Attrs); err != nil {
			return nil, statusFor(err), err
		}
		return body, http.StatusCreated, nil
	})
}

func (s *Server) handleEdgeDelete(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	s.run(w, r, func() (any, int, error) {
		if err := s.st().RemoveEdge(id); err != nil {
			return nil, statusFor(err), err
		}
		return map[string]any{"removed": id}, http.StatusOK, nil
	})
}

// handleVertexAttrs and handleEdgeAttrs apply a {"set": {...},
// "remove": [...]} patch. Sets are applied in sorted key order so a
// patch is deterministic.
func (s *Server) handleVertexAttrs(w http.ResponseWriter, r *http.Request) {
	s.handleAttrPatch(w, r, s.st().SetVertexAttr, s.st().RemoveVertexAttr)
}

func (s *Server) handleEdgeAttrs(w http.ResponseWriter, r *http.Request) {
	s.handleAttrPatch(w, r, s.st().SetEdgeAttr, s.st().RemoveEdgeAttr)
}

func (s *Server) handleAttrPatch(w http.ResponseWriter, r *http.Request,
	set func(int64, string, any) error, remove func(int64, string) error) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	var patch attrPatch
	if !s.decode(w, r, &patch) {
		return
	}
	s.run(w, r, func() (any, int, error) {
		keys := make([]string, 0, len(patch.Set))
		for k := range patch.Set {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := set(id, k, patch.Set[k]); err != nil {
				return nil, statusFor(err), err
			}
		}
		for _, k := range patch.Remove {
			if err := remove(id, k); err != nil {
				return nil, statusFor(err), err
			}
		}
		return map[string]any{"id": id, "set": len(keys), "removed": len(patch.Remove)}, http.StatusOK, nil
	})
}
