package server

import (
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sqlgraph/internal/engine"
	"sqlgraph/internal/metrics"
	"sqlgraph/internal/trace"
)

// latencyBuckets are the histogram upper bounds in seconds (powers of
// four from 250µs to ~16s, plus +Inf). Coarse on purpose: the histogram
// is for spotting saturation, the load harness measures exact quantiles.
var latencyBuckets = []float64{0.00025, 0.001, 0.004, 0.016, 0.064, 0.256, 1.024, 4.096, 16.384}

// telemetry is the serving layer's view over the metrics registry: typed
// handles for the counters the request path touches, plus registered
// callbacks that scrape the store's own atomic counters (trace recorder,
// MVCC, plan cache, WAL) live. Everything /metrics serves is rendered
// from the registry, so every series carries HELP/TYPE and appears in
// /debug/history samples under the same name.
type telemetry struct {
	reg *metrics.Registry

	requests *metrics.CounterVec   // route, code
	latency  *metrics.HistogramVec // per-route request latency
	stages   *metrics.HistogramVec // query stage (parse|translate|plan|execute) latency

	admitted      *metrics.Counter
	rejected      *metrics.Counter // 429s
	shutdownDrops *metrics.Counter // 503s during drain
	panics        *metrics.Counter

	queries     *metrics.Counter
	queryErrors *metrics.Counter
	scanOps     *metrics.Counter
	scanRows    *metrics.Counter
	joins       *metrics.CounterVec // strategy
	joinRows    *metrics.Counter
	maxFanout   atomic.Int64 // high-water morsel parallelism, rendered as a gauge

	// replicaOnce guards the follower gauge registration: AttachReplica
	// runs again after a replicator restart, but each series registers
	// exactly once (the callbacks read the current replicator).
	replicaOnce sync.Once
}

// newTelemetry builds the registry and registers every series. Gauges
// and store-derived counters read through s.st() at scrape time so they
// follow replica store swaps; nothing is mirrored.
func newTelemetry(s *Server) *telemetry {
	reg := metrics.NewRegistry()
	t := &telemetry{reg: reg}

	t.requests = reg.CounterVec("sqlgraphd_requests_total",
		"HTTP requests finished, by route and status code.", "route", "code")
	t.latency = reg.HistogramVec("sqlgraphd_request_seconds",
		"HTTP request latency in seconds, by route.", latencyBuckets, "route")
	t.stages = reg.HistogramVec("sqlgraphd_query_stage_seconds",
		"Query stage latency in seconds (parse, translate, plan, execute, tail).", latencyBuckets, "stage")

	t.admitted = reg.Counter("sqlgraphd_admission_admitted_total",
		"Requests admitted past the concurrency gate.")
	t.rejected = reg.Counter("sqlgraphd_admission_rejected_total",
		"Requests rejected 429 because the admission queue was full.")
	t.shutdownDrops = reg.Counter("sqlgraphd_shutdown_rejected_total",
		"Requests rejected 503 during shutdown drain.")
	t.panics = reg.Counter("sqlgraphd_panics_total",
		"Panics recovered in request handling.")

	t.queries = reg.Counter("sqlgraphd_queries_total",
		"Gremlin queries executed (including failures).")
	t.queryErrors = reg.Counter("sqlgraphd_query_errors_total",
		"Gremlin queries that returned an error.")
	t.scanOps = reg.Counter("sqlgraphd_exec_scans_total",
		"Relational scan operators executed.")
	t.scanRows = reg.Counter("sqlgraphd_exec_scan_rows_total",
		"Rows read by scan operators.")
	t.joins = reg.CounterVec("sqlgraphd_exec_joins_total",
		"Join operators executed, by strategy.", "strategy")
	t.joinRows = reg.Counter("sqlgraphd_exec_join_rows_total",
		"Rows produced by join operators.")
	reg.GaugeFunc("sqlgraphd_exec_max_workers",
		"High-water morsel-parallel worker count observed in one query.",
		func() float64 { return float64(t.maxFanout.Load()) })

	// Serving-layer gauges.
	reg.GaugeFunc("sqlgraphd_in_flight",
		"Requests currently admitted and executing.",
		func() float64 { return float64(s.adm.InFlight()) })
	reg.GaugeFunc("sqlgraphd_admission_queued",
		"Requests waiting for admission.",
		func() float64 { return float64(s.adm.Queued()) })
	reg.GaugeFunc("sqlgraphd_sessions_open",
		"Open snapshot sessions.",
		func() float64 { return float64(s.sess.Open()) })

	// MVCC: snapshot pins and version GC. A growing oldest-pin age or GC
	// backlog means some reader is holding back physical reclamation.
	reg.GaugeFunc("sqlgraphd_snapshot_pins",
		"Distinct store versions pinned by open snapshots.",
		func() float64 { return float64(s.st().PinnedSnapshots()) })
	reg.GaugeFunc("sqlgraphd_mvcc_oldest_pin_age_seconds",
		"Age of the longest-held snapshot pin in seconds (0 when nothing is pinned).",
		func() float64 { return s.st().OldestPinAge().Seconds() })
	reg.GaugeFunc("sqlgraphd_mvcc_gc_backlog_records",
		"Version-GC garbage records queued, waiting for pins to advance.",
		func() float64 { return float64(s.st().GCStats().Backlog) })
	reg.CounterFunc("sqlgraphd_mvcc_gc_applied_total",
		"Version-GC garbage records applied (index entries, slots, history chains).",
		func() float64 { return float64(s.st().GCStats().Applied) })
	reg.CounterFunc("sqlgraphd_mvcc_gc_reclaimed_rows_total",
		"Heap row slots physically reclaimed by version GC.",
		func() float64 { return float64(s.st().GCStats().ReclaimedRows) })

	// Plan and prepared-statement caches.
	reg.CounterFunc("sqlgraphd_plan_cache_hits_total",
		"SQL plan cache hits.",
		func() float64 { return float64(s.st().PlanCacheStats().Hits) })
	reg.CounterFunc("sqlgraphd_plan_cache_misses_total",
		"SQL plan cache misses (statement planned for the first time).",
		func() float64 { return float64(s.st().PlanCacheStats().Misses) })
	reg.CounterFunc("sqlgraphd_plan_cache_invalidations_total",
		"SQL plan cache entries discarded for a stale statistics version or changed execution stamp.",
		func() float64 { return float64(s.st().PlanCacheStats().Invalidations) })
	reg.CounterFunc("sqlgraphd_prepared_cache_hits_total",
		"Prepared Gremlin statement cache hits (parse+translate skipped).",
		func() float64 { h, _ := s.st().PreparedCacheStats(); return float64(h) })
	reg.CounterFunc("sqlgraphd_prepared_cache_misses_total",
		"Prepared Gremlin statement cache misses.",
		func() float64 { _, m := s.st().PreparedCacheStats(); return float64(m) })
	reg.CounterFunc("sqlgraphd_tail_fallback_queries_total",
		"Queries that fell back to the tail executor for steps SQL cannot express.",
		func() float64 { return float64(s.st().TailQueries()) })

	// Slow queries and the write path, scraped from the trace recorder's
	// atomic counters.
	reg.CounterFunc("sqlgraphd_slow_queries_total",
		"Traces that crossed the slow-query threshold.",
		func() float64 { return float64(s.st().Tracer().SlowCount()) })
	ws := func() trace.WriteStats { return s.st().Tracer().WriteStats() }
	reg.CounterFunc("sqlgraphd_wal_appends_total",
		"WAL records appended.",
		func() float64 { return float64(ws().WALAppends) })
	reg.CounterFunc("sqlgraphd_wal_append_seconds_total",
		"Total seconds spent appending WAL records.",
		func() float64 { return float64(ws().WALAppendNs) / 1e9 })
	reg.CounterFunc("sqlgraphd_wal_fsyncs_total",
		"Physical WAL flush+fsync operations (group commits).",
		func() float64 { return float64(ws().WALFsyncs) })
	reg.CounterFunc("sqlgraphd_wal_fsync_seconds_total",
		"Total seconds spent in WAL flush+fsync.",
		func() float64 { return float64(ws().WALFsyncNs) / 1e9 })
	reg.GaugeFunc("sqlgraphd_wal_buffered_records",
		"WAL records appended but not yet flushed (group-commit backpressure).",
		func() float64 { return float64(s.st().WALBuffered()) })

	// Records-per-fsync histogram: the group-commit batch size. sum /
	// count is the mean records amortized per physical sync.
	flushBounds := make([]float64, len(trace.FlushBatchBuckets))
	for i, b := range trace.FlushBatchBuckets {
		flushBounds[i] = float64(b)
	}
	reg.HistogramFunc("sqlgraphd_wal_flush_records",
		"Records covered per physical WAL flush (group-commit batch size).",
		flushBounds, func() metrics.HistSnapshot {
			st := ws()
			h := metrics.HistSnapshot{Counts: st.WALFlushSizes[:], Sum: float64(st.WALFlushRecords)}
			for _, c := range st.WALFlushSizes {
				h.Count += c
			}
			return h
		})
	// Flush latency histogram: how long each group commit's write+fsync
	// took (named _flush_seconds to stay distinct from the
	// _fsync_seconds_total running sum above).
	reg.HistogramFunc("sqlgraphd_wal_flush_seconds",
		"Latency of physical WAL flush+fsync operations in seconds.",
		trace.FsyncLatencyBuckets[:], func() metrics.HistSnapshot {
			st := ws()
			return metrics.HistSnapshot{
				Counts: st.WALFsyncLatencies[:],
				Sum:    float64(st.WALFsyncNs) / 1e9,
				Count:  st.WALFsyncs,
			}
		})

	reg.CounterFunc("sqlgraphd_checkpoints_total",
		"Checkpoints completed (snapshot dump + log reset).",
		func() float64 { return float64(ws().Checkpoints) })
	reg.CounterFunc("sqlgraphd_checkpoint_seconds_total",
		"Total seconds spent checkpointing.",
		func() float64 { return float64(ws().CheckpointNs) / 1e9 })
	reg.CounterFunc("sqlgraphd_vacuums_total",
		"Vacuum passes completed.",
		func() float64 { return float64(ws().Vacuums) })
	reg.CounterFunc("sqlgraphd_vacuum_seconds_total",
		"Total seconds spent vacuuming.",
		func() float64 { return float64(ws().VacuumNs) / 1e9 })

	// Primary-side replication: one lag series per connected /wal stream,
	// measured as records the primary has committed but not yet sent to
	// that follower.
	reg.GaugeFunc("sqlgraphd_wal_streams_active",
		"Open /wal replication streams.",
		func() float64 {
			n := 0
			s.walStreams.Range(func(_, _ any) bool { n++; return true })
			return float64(n)
		})
	reg.CounterFunc("sqlgraphd_wal_streams_total",
		"Total /wal replication streams ever opened.",
		func() float64 { return float64(s.walStreamSeq.Load()) })
	reg.GaugeVecFunc("sqlgraphd_wal_stream_lag_records",
		"Committed records not yet sent to each follower's /wal stream.",
		[]string{"peer"}, func() []metrics.LabeledValue {
			applied := s.st().AppliedLSN()
			var out []metrics.LabeledValue
			s.walStreams.Range(func(_, v any) bool {
				st := v.(*walStreamInfo)
				lag := float64(0)
				if sent := st.sentLSN.Load(); applied > sent {
					lag = float64(applied - sent)
				}
				out = append(out, metrics.LabeledValue{Values: []string{st.peer}, Value: lag})
				return true
			})
			return out
		})

	return t
}

// registerReplica adds the follower-side replication gauges on the
// first AttachReplica; later calls (replicator restarts) are no-ops
// because status already follows the server's current replicator.
func (t *telemetry) registerReplica(status func() ReplicaStatus) {
	t.replicaOnce.Do(func() { t.registerReplicaGauges(status) })
}

func (t *telemetry) registerReplicaGauges(status func() ReplicaStatus) {
	t.reg.GaugeFunc("sqlgraphd_replica_applied_lsn",
		"Last LSN applied by this follower.",
		func() float64 { return float64(status().AppliedLSN) })
	t.reg.GaugeFunc("sqlgraphd_replica_primary_lsn",
		"Last LSN advertised by the primary.",
		func() float64 { return float64(status().PrimaryLSN) })
	t.reg.GaugeFunc("sqlgraphd_replica_lag_seconds",
		"Staleness bound in seconds on reads this follower serves (0 when caught up).",
		func() float64 { return status().LagSeconds })
	t.reg.GaugeFunc("sqlgraphd_replica_connected",
		"1 while the /wal stream to the primary is up.",
		func() float64 {
			if status().Connected {
				return 1
			}
			return 0
		})
	t.reg.CounterFunc("sqlgraphd_replica_reconnects_total",
		"Successful connections to the primary's /wal stream.",
		func() float64 { return float64(status().Reconnects) })
	t.reg.CounterFunc("sqlgraphd_replica_resyncs_total",
		"Full re-bootstraps from the primary's snapshot.",
		func() float64 { return float64(status().Resyncs) })
}

// observeRequest records one finished HTTP request.
func (t *telemetry) observeRequest(route string, code int, d time.Duration) {
	t.requests.With(route, strconv.Itoa(code)).Add(1)
	t.latency.Observe(d.Seconds(), route)
}

// observeExec folds one query's executor statistics into the aggregates.
func (t *telemetry) observeExec(stats *engine.ExecStats, err error) {
	t.queries.Inc()
	if err != nil {
		t.queryErrors.Inc()
		return
	}
	for _, sc := range stats.Scans {
		t.scanOps.Inc()
		t.scanRows.Add(uint64(sc.RowsIn))
	}
	for _, j := range stats.Joins {
		t.joins.With(string(j.Strategy)).Add(1)
		t.joinRows.Add(uint64(j.OutRows))
	}
	w := int64(stats.MaxWorkers())
	for {
		cur := t.maxFanout.Load()
		if w <= cur || t.maxFanout.CompareAndSwap(cur, w) {
			break
		}
	}
}

// observeTrace folds one query trace's stage timings (parse, translate,
// plan, execute — the root span's direct children) into the per-stage
// latency histograms.
func (t *telemetry) observeTrace(tr *trace.Trace) {
	if tr == nil || tr.Root == nil {
		return
	}
	for _, sp := range tr.Root.Children {
		t.stages.Observe(time.Duration(sp.DurNs).Seconds(), sp.Name)
	}
}

func (t *telemetry) addPanic()        { t.panics.Inc() }
func (t *telemetry) addAdmitted()     { t.admitted.Inc() }
func (t *telemetry) addRejected()     { t.rejected.Inc() }
func (t *telemetry) addShutdownDrop() { t.shutdownDrops.Inc() }

// write renders the Prometheus text exposition format from the registry.
func (t *telemetry) write(w io.Writer) { t.reg.WritePrometheus(w) }
