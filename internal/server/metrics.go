package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"sqlgraph/internal/engine"
	"sqlgraph/internal/trace"
)

// latencyBuckets are the histogram upper bounds in seconds (powers of
// four from 250µs to ~16s, plus +Inf). Coarse on purpose: the histogram
// is for spotting saturation, the load harness measures exact quantiles.
var latencyBuckets = []float64{0.00025, 0.001, 0.004, 0.016, 0.064, 0.256, 1.024, 4.096, 16.384}

// histogram is a fixed-bucket latency histogram.
type histogram struct {
	counts [10]uint64 // len(latencyBuckets)+1, last bucket is +Inf
	sum    float64
	total  uint64
}

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < len(latencyBuckets) && s > latencyBuckets[i] {
		i++
	}
	h.counts[i]++
	h.sum += s
	h.total++
}

// metrics aggregates the serving counters exposed on /metrics. One
// mutex guards everything: each observation is a handful of integer
// adds, far cheaper than the request it describes.
type metrics struct {
	mu sync.Mutex

	requests map[string]uint64 // "route|code" -> count
	latency  map[string]*histogram
	stages   map[string]*histogram // query stage (parse|translate|plan|execute) -> latency

	admitted      uint64
	rejected      uint64 // 429s
	shutdownDrops uint64 // 503s during drain
	panics        uint64

	queries      uint64
	queryErrors  uint64
	scanOps      uint64
	scanRows     uint64
	joinOps      map[string]uint64 // strategy -> joins executed
	joinRows     uint64
	maxFanout    int
	sessionsOpen func() int // live gauges supplied by the server
	pinnedSnaps  func() int
	inFlight     func() int
	queued       func() int

	// Scraped live from the store's trace recorder (atomic counters, so
	// no lock coordination with the query path is needed).
	slowCount  func() uint64
	writeStats func() trace.WriteStats

	// Set when this server is a follower (Server.AttachReplica).
	replica func() ReplicaStatus
}

func newMetrics() *metrics {
	return &metrics{
		requests: map[string]uint64{},
		latency:  map[string]*histogram{},
		stages:   map[string]*histogram{},
		joinOps:  map[string]uint64{},
	}
}

// observeRequest records one finished HTTP request.
func (m *metrics) observeRequest(route string, code int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[fmt.Sprintf("%s|%d", route, code)]++
	h := m.latency[route]
	if h == nil {
		h = &histogram{}
		m.latency[route] = h
	}
	h.observe(d)
}

// observeExec folds one query's executor statistics into the aggregates.
func (m *metrics) observeExec(stats *engine.ExecStats, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queries++
	if err != nil {
		m.queryErrors++
		return
	}
	for _, sc := range stats.Scans {
		m.scanOps++
		m.scanRows += uint64(sc.RowsIn)
	}
	for _, j := range stats.Joins {
		m.joinOps[string(j.Strategy)]++
		m.joinRows += uint64(j.OutRows)
	}
	if w := stats.MaxWorkers(); w > m.maxFanout {
		m.maxFanout = w
	}
}

// observeTrace folds one query trace's stage timings (parse, translate,
// plan, execute — the root span's direct children) into the per-stage
// latency histograms.
func (m *metrics) observeTrace(t *trace.Trace) {
	if t == nil || t.Root == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, sp := range t.Root.Children {
		h := m.stages[sp.Name]
		if h == nil {
			h = &histogram{}
			m.stages[sp.Name] = h
		}
		h.observe(time.Duration(sp.DurNs))
	}
}

func (m *metrics) addPanic()        { m.mu.Lock(); m.panics++; m.mu.Unlock() }
func (m *metrics) addAdmitted()     { m.mu.Lock(); m.admitted++; m.mu.Unlock() }
func (m *metrics) addRejected()     { m.mu.Lock(); m.rejected++; m.mu.Unlock() }
func (m *metrics) addShutdownDrop() { m.mu.Lock(); m.shutdownDrops++; m.mu.Unlock() }

// write renders the Prometheus text exposition format (counters and
// gauges only, no client library needed).
func (m *metrics) write(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# TYPE sqlgraphd_requests_total counter")
	for _, k := range sortedKeys(m.requests) {
		route, code := splitKey(k)
		fmt.Fprintf(w, "sqlgraphd_requests_total{route=%q,code=%q} %d\n", route, code, m.requests[k])
	}

	fmt.Fprintln(w, "# TYPE sqlgraphd_request_seconds histogram")
	routes := make([]string, 0, len(m.latency))
	for r := range m.latency {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	for _, r := range routes {
		h := m.latency[r]
		cum := uint64(0)
		for i, ub := range latencyBuckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "sqlgraphd_request_seconds_bucket{route=%q,le=\"%g\"} %d\n", r, ub, cum)
		}
		fmt.Fprintf(w, "sqlgraphd_request_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", r, h.total)
		fmt.Fprintf(w, "sqlgraphd_request_seconds_sum{route=%q} %g\n", r, h.sum)
		fmt.Fprintf(w, "sqlgraphd_request_seconds_count{route=%q} %d\n", r, h.total)
	}

	fmt.Fprintln(w, "# TYPE sqlgraphd_query_stage_seconds histogram")
	stages := make([]string, 0, len(m.stages))
	for st := range m.stages {
		stages = append(stages, st)
	}
	sort.Strings(stages)
	for _, st := range stages {
		h := m.stages[st]
		cum := uint64(0)
		for i, ub := range latencyBuckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "sqlgraphd_query_stage_seconds_bucket{stage=%q,le=\"%g\"} %d\n", st, ub, cum)
		}
		fmt.Fprintf(w, "sqlgraphd_query_stage_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", st, h.total)
		fmt.Fprintf(w, "sqlgraphd_query_stage_seconds_sum{stage=%q} %g\n", st, h.sum)
		fmt.Fprintf(w, "sqlgraphd_query_stage_seconds_count{stage=%q} %d\n", st, h.total)
	}

	gauge := func(name string, fn func() int) {
		if fn == nil {
			return
		}
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, fn())
	}
	gauge("sqlgraphd_in_flight", m.inFlight)
	gauge("sqlgraphd_admission_queued", m.queued)
	gauge("sqlgraphd_sessions_open", m.sessionsOpen)
	gauge("sqlgraphd_snapshot_pins", m.pinnedSnaps)

	fmt.Fprintf(w, "# TYPE sqlgraphd_admission_admitted_total counter\nsqlgraphd_admission_admitted_total %d\n", m.admitted)
	fmt.Fprintf(w, "# TYPE sqlgraphd_admission_rejected_total counter\nsqlgraphd_admission_rejected_total %d\n", m.rejected)
	fmt.Fprintf(w, "# TYPE sqlgraphd_shutdown_rejected_total counter\nsqlgraphd_shutdown_rejected_total %d\n", m.shutdownDrops)
	fmt.Fprintf(w, "# TYPE sqlgraphd_panics_total counter\nsqlgraphd_panics_total %d\n", m.panics)

	fmt.Fprintf(w, "# TYPE sqlgraphd_queries_total counter\nsqlgraphd_queries_total %d\n", m.queries)
	fmt.Fprintf(w, "# TYPE sqlgraphd_query_errors_total counter\nsqlgraphd_query_errors_total %d\n", m.queryErrors)
	fmt.Fprintf(w, "# TYPE sqlgraphd_exec_scans_total counter\nsqlgraphd_exec_scans_total %d\n", m.scanOps)
	fmt.Fprintf(w, "# TYPE sqlgraphd_exec_scan_rows_total counter\nsqlgraphd_exec_scan_rows_total %d\n", m.scanRows)
	fmt.Fprintln(w, "# TYPE sqlgraphd_exec_joins_total counter")
	for _, s := range sortedKeys(m.joinOps) {
		fmt.Fprintf(w, "sqlgraphd_exec_joins_total{strategy=%q} %d\n", s, m.joinOps[s])
	}
	fmt.Fprintf(w, "# TYPE sqlgraphd_exec_join_rows_total counter\nsqlgraphd_exec_join_rows_total %d\n", m.joinRows)
	fmt.Fprintf(w, "# TYPE sqlgraphd_exec_max_workers gauge\nsqlgraphd_exec_max_workers %d\n", m.maxFanout)

	if m.slowCount != nil {
		fmt.Fprintf(w, "# TYPE sqlgraphd_slow_queries_total counter\nsqlgraphd_slow_queries_total %d\n", m.slowCount())
	}
	if m.writeStats != nil {
		ws := m.writeStats()
		sec := func(ns int64) float64 { return float64(ns) / 1e9 }
		fmt.Fprintf(w, "# TYPE sqlgraphd_wal_appends_total counter\nsqlgraphd_wal_appends_total %d\n", ws.WALAppends)
		fmt.Fprintf(w, "# TYPE sqlgraphd_wal_append_seconds_total counter\nsqlgraphd_wal_append_seconds_total %g\n", sec(ws.WALAppendNs))
		fmt.Fprintf(w, "# TYPE sqlgraphd_wal_fsyncs_total counter\nsqlgraphd_wal_fsyncs_total %d\n", ws.WALFsyncs)
		fmt.Fprintf(w, "# TYPE sqlgraphd_wal_fsync_seconds_total counter\nsqlgraphd_wal_fsync_seconds_total %g\n", sec(ws.WALFsyncNs))
		// Records-per-fsync histogram: the group-commit batch size. sum /
		// count is the mean records amortized per physical sync.
		fmt.Fprintf(w, "# TYPE sqlgraphd_wal_flush_records histogram\n")
		cum := uint64(0)
		for i, le := range trace.FlushBatchBuckets {
			cum += ws.WALFlushSizes[i]
			fmt.Fprintf(w, "sqlgraphd_wal_flush_records_bucket{le=%q} %d\n", fmt.Sprint(le), cum)
		}
		cum += ws.WALFlushSizes[len(trace.FlushBatchBuckets)]
		fmt.Fprintf(w, "sqlgraphd_wal_flush_records_bucket{le=\"+Inf\"} %d\n", cum)
		fmt.Fprintf(w, "sqlgraphd_wal_flush_records_sum %d\n", ws.WALFlushRecords)
		fmt.Fprintf(w, "sqlgraphd_wal_flush_records_count %d\n", cum)
		fmt.Fprintf(w, "# TYPE sqlgraphd_checkpoints_total counter\nsqlgraphd_checkpoints_total %d\n", ws.Checkpoints)
		fmt.Fprintf(w, "# TYPE sqlgraphd_checkpoint_seconds_total counter\nsqlgraphd_checkpoint_seconds_total %g\n", sec(ws.CheckpointNs))
		fmt.Fprintf(w, "# TYPE sqlgraphd_vacuums_total counter\nsqlgraphd_vacuums_total %d\n", ws.Vacuums)
		fmt.Fprintf(w, "# TYPE sqlgraphd_vacuum_seconds_total counter\nsqlgraphd_vacuum_seconds_total %g\n", sec(ws.VacuumNs))
	}

	if m.replica != nil {
		st := m.replica()
		conn := 0
		if st.Connected {
			conn = 1
		}
		fmt.Fprintf(w, "# TYPE sqlgraphd_replica_applied_lsn gauge\nsqlgraphd_replica_applied_lsn %d\n", st.AppliedLSN)
		fmt.Fprintf(w, "# TYPE sqlgraphd_replica_primary_lsn gauge\nsqlgraphd_replica_primary_lsn %d\n", st.PrimaryLSN)
		fmt.Fprintf(w, "# TYPE sqlgraphd_replica_lag_seconds gauge\nsqlgraphd_replica_lag_seconds %g\n", st.LagSeconds)
		fmt.Fprintf(w, "# TYPE sqlgraphd_replica_connected gauge\nsqlgraphd_replica_connected %d\n", conn)
		fmt.Fprintf(w, "# TYPE sqlgraphd_replica_reconnects_total counter\nsqlgraphd_replica_reconnects_total %d\n", st.Reconnects)
		fmt.Fprintf(w, "# TYPE sqlgraphd_replica_resyncs_total counter\nsqlgraphd_replica_resyncs_total %d\n", st.Resyncs)
	}
}

func sortedKeys(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func splitKey(k string) (route, code string) {
	for i := 0; i < len(k); i++ {
		if k[i] == '|' {
			return k[:i], k[i+1:]
		}
	}
	return k, ""
}
