package server

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"sqlgraph/internal/core"
)

// TestMetricsRegistryCompleteness is the drop-on-rename lint: every
// metric registered in the process appears in /metrics with exactly one
// TYPE line (and at least one series), so a renamed or unplugged metric
// cannot silently vanish from the exposition.
func TestMetricsRegistryCompleteness(t *testing.T) {
	env := newTestEnv(t, Config{})
	_, body := env.doJSON(t, "GET", "/metrics", nil)
	text := string(body)
	names := env.srv.met.reg.Names()
	if len(names) < 40 {
		t.Fatalf("suspiciously few registered metrics: %d", len(names))
	}
	for _, name := range names {
		if got := strings.Count(text, "# TYPE "+name+" "); got != 1 {
			t.Errorf("metric %s has %d TYPE lines, want 1", name, got)
		}
		if got := strings.Count(text, "# HELP "+name+" "); got != 1 {
			t.Errorf("metric %s has %d HELP lines, want 1", name, got)
		}
		// At least one sample line for the metric family (vectors with no
		// children yet are the only legitimate zero-series families).
		re := regexp.MustCompile("(?m)^" + regexp.QuoteMeta(name) + "(_bucket|_sum|_count)?(\\{|\\s)")
		if !re.MatchString(text) && !strings.Contains(text, "# TYPE "+name) {
			t.Errorf("metric %s emits no series", name)
		}
	}
}

// TestDebugEventsLifecycle drives a checkpoint, a vacuum, and a slow
// query against a durable store and asserts all three appear in
// /debug/events in order (newest first), in both JSON and text form.
func TestDebugEventsLifecycle(t *testing.T) {
	dir := t.TempDir()
	store, err := core.Load(figure2a(t), core.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	// SlowQuery threshold 1ns: every query is slow.
	srv := New(store, Config{ErrorLog: log.New(io.Discard, "", 0), SlowQuery: time.Nanosecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	env := &testEnv{store: store, srv: srv, ts: ts}

	if code, body := env.doJSON(t, "POST", "/admin/checkpoint", nil); code != http.StatusOK {
		t.Fatalf("checkpoint: %d %s", code, body)
	}
	if code, body := env.doJSON(t, "POST", "/admin/vacuum", nil); code != http.StatusOK {
		t.Fatalf("vacuum: %d %s", code, body)
	}
	if code, body := env.doJSON(t, "POST", "/query", map[string]any{"gremlin": "g.V.name"}); code != http.StatusOK {
		t.Fatalf("query: %d %s", code, body)
	}

	code, body := env.doJSON(t, "GET", "/debug/events", nil)
	if code != http.StatusOK {
		t.Fatalf("/debug/events: %d", code)
	}
	resp := decodeInto[debugEventsResponse](t, body)
	if resp.Total != uint64(len(resp.Events)) {
		t.Errorf("total %d != retained %d with no eviction", resp.Total, len(resp.Events))
	}
	// Newest first: slow-query, vacuum, checkpoint, checkpoint-start.
	var kinds []string
	for _, e := range resp.Events {
		kinds = append(kinds, e.Kind)
	}
	wantOrder := []string{"slow-query", "vacuum", "checkpoint", "checkpoint-start"}
	idx := 0
	for _, k := range kinds {
		if idx < len(wantOrder) && k == wantOrder[idx] {
			idx++
		}
	}
	if idx != len(wantOrder) {
		t.Errorf("events missing or misordered; want subsequence %v, got %v", wantOrder, kinds)
	}
	for _, e := range resp.Events {
		if e.Kind == "checkpoint" && e.DurMs <= 0 {
			t.Errorf("checkpoint event has no duration: %+v", e)
		}
	}
	// Seq strictly decreasing (newest first).
	for i := 1; i < len(resp.Events); i++ {
		if resp.Events[i].Seq >= resp.Events[i-1].Seq {
			t.Fatalf("events not newest-first at %d: %+v", i, resp.Events)
		}
	}

	code, body = env.doJSON(t, "GET", "/debug/events?format=text", nil)
	if code != http.StatusOK || !strings.Contains(string(body), "checkpoint") {
		t.Errorf("text events: %d %q", code, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestDebugEventsRingEviction overflows a tiny journal and checks the
// ring keeps only the newest events while the total keeps counting.
func TestDebugEventsRingEviction(t *testing.T) {
	env := newTestEnv(t, Config{EventBuffer: 4})
	for i := 0; i < 10; i++ {
		env.srv.events.Record("test-event", fmt.Sprintf("n=%d", i))
	}
	_, body := env.doJSON(t, "GET", "/debug/events", nil)
	resp := decodeInto[debugEventsResponse](t, body)
	if len(resp.Events) != 4 {
		t.Fatalf("retained %d events, want 4", len(resp.Events))
	}
	if resp.Total != 10 {
		t.Fatalf("total %d, want 10", resp.Total)
	}
	if resp.Events[0].Detail != "n=9" {
		t.Fatalf("newest event: %+v", resp.Events[0])
	}
}

// TestDebugHistory exercises the sampler endpoint: samples exist
// immediately (Start takes one), the window parses and clamps, and junk
// windows are 400s.
func TestDebugHistory(t *testing.T) {
	env := newTestEnv(t, Config{SampleInterval: 5 * time.Millisecond, SampleRetention: 8})
	env.doJSON(t, "POST", "/query", map[string]any{"gremlin": "g.V.name"})
	deadline := time.Now().Add(5 * time.Second)
	for env.srv.sampler.History(0) == nil || len(env.srv.sampler.History(0)) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("sampler never accumulated")
		}
		time.Sleep(2 * time.Millisecond)
	}

	code, body := env.doJSON(t, "GET", "/debug/history?window=1h", nil)
	if code != http.StatusOK {
		t.Fatalf("/debug/history: %d", code)
	}
	resp := decodeInto[debugHistoryResponse](t, body)
	if resp.IntervalMs != 5 || resp.Retention != 8 {
		t.Errorf("sampler meta: %+v", resp)
	}
	if len(resp.Samples) == 0 || len(resp.Samples) > 8 {
		t.Errorf("1h window returned %d samples, want 1..8 (clamped to retention)", len(resp.Samples))
	}
	for i := 1; i < len(resp.Samples); i++ {
		if resp.Samples[i].T.Before(resp.Samples[i-1].T) {
			t.Fatal("samples not oldest-first")
		}
	}
	last := resp.Samples[len(resp.Samples)-1]
	if v, ok := last.Values["sqlgraphd_queries_total"]; !ok || v < 1 {
		t.Errorf("sample missing live counter: %v", last.Values)
	}

	// Tiny window still returns the newest sample.
	code, body = env.doJSON(t, "GET", "/debug/history?window=1ns", nil)
	if code != http.StatusOK {
		t.Fatalf("tiny window: %d", code)
	}
	if resp := decodeInto[debugHistoryResponse](t, body); len(resp.Samples) == 0 {
		t.Error("tiny window returned no samples")
	}

	if code, _ := env.doJSON(t, "GET", "/debug/history?window=banana", nil); code != http.StatusBadRequest {
		t.Errorf("junk window: %d, want 400", code)
	}
}

// TestHistorySamplerDisabled verifies a negative interval turns the
// sampler off and the endpoint reports it.
func TestHistorySamplerDisabled(t *testing.T) {
	env := newTestEnv(t, Config{SampleInterval: -1})
	if env.srv.sampler != nil {
		t.Fatal("sampler running despite negative interval")
	}
	if code, _ := env.doJSON(t, "GET", "/debug/history", nil); code != http.StatusNotFound {
		t.Errorf("disabled history: %d, want 404", code)
	}
}

// TestMetricsScrapeUnderChurn is the structural-race test: scrape
// /metrics (and snapshot the registry) in a tight loop while queries,
// writes, and vacuums churn. Run under -race this fails on any locked
// or torn read path.
func TestMetricsScrapeUnderChurn(t *testing.T) {
	env := newTestEnv(t, Config{SampleInterval: time.Millisecond})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	worker := func(fn func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				fn(i)
			}
		}()
	}
	worker(func(i int) { // query churn
		env.doJSON(t, "POST", "/query", map[string]any{"gremlin": "g.V.out.name"})
	})
	worker(func(i int) { // write churn
		env.doJSON(t, "POST", "/vertex", map[string]any{"id": 1000 + i, "attrs": map[string]any{"name": "n"}})
	})
	worker(func(i int) { // vacuum churn
		env.doJSON(t, "POST", "/admin/vacuum", nil)
	})

	deadline := time.Now().Add(2 * time.Second)
	scrapes := 0
	for time.Now().Before(deadline) {
		code, body := env.doJSON(t, "GET", "/metrics", nil)
		if code != http.StatusOK {
			t.Fatalf("scrape %d: %d", scrapes, code)
		}
		if !strings.Contains(string(body), "sqlgraphd_queries_total") {
			t.Fatalf("scrape %d dropped a series", scrapes)
		}
		_ = env.srv.met.reg.Snapshot()
		_ = env.srv.events.Events()
		scrapes++
	}
	close(stop)
	wg.Wait()
	if scrapes < 10 {
		t.Fatalf("only %d scrapes completed", scrapes)
	}
}

// TestSamplerSeriesMatchExposition pins the guarantee that history
// sample keys are exactly the exposition series names.
func TestSamplerSeriesMatchExposition(t *testing.T) {
	env := newTestEnv(t, Config{})
	env.doJSON(t, "POST", "/query", map[string]any{"gremlin": "g.V.name"})
	snap := env.srv.met.reg.Snapshot()
	_, body := env.doJSON(t, "GET", "/metrics", nil)
	text := string(body)
	for key := range snap {
		// Values move between the snapshot and the scrape; names must not.
		if !strings.Contains(text, key+" ") {
			t.Errorf("snapshot key %q absent from /metrics", key)
		}
	}
	if _, ok := snap["sqlgraphd_queries_total"]; !ok {
		t.Error("snapshot missing sqlgraphd_queries_total")
	}
}
