package server

// Streaming WAL replication. The primary exposes its checksummed log as
// a chunked HTTP stream (GET /wal?from=lsn) plus a bootstrap snapshot
// (GET /snapshot); a Replicator tails that stream into its own durable
// store and re-applies each record through the stored procedures, which
// assign the same LSNs the primary did — so the follower's local log
// position doubles as its replication cursor, persisted atomically with
// the data (see core.ApplyReplicated). Robustness:
//
//   - The wire format is the log format: every frame is CRC-verified on
//     receive, and a connection cut mid-frame is detected as a torn
//     stream, never applied.
//   - Reconnects use jittered exponential backoff and resume from the
//     follower's applied LSN; redelivered records are skipped by LSN.
//   - If the primary has checkpointed past the follower's position
//     (410 on /wal) the follower re-bootstraps from /snapshot, swapping
//     the freshly installed store under live read traffic.
//   - A follower that loses its primary keeps serving snapshot reads,
//     reports the growing lag on /healthz and /metrics, and resumes
//     automatically when the primary returns.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sqlgraph/internal/core"
	"sqlgraph/internal/metrics"
	"sqlgraph/internal/wal"
)

// walStreamInfo tracks one open /wal stream for the primary-side
// per-follower lag gauge: the peer's address and the last LSN pushed to
// it.
type walStreamInfo struct {
	peer    string
	sentLSN atomic.Uint64
}

// ---- primary side: /wal and /snapshot -----------------------------------

// primaryOnly refuses mutations on a follower with 421 Misdirected
// Request, pointing the client at the primary. Reads are unaffected.
func (s *Server) primaryOnly(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if rep := s.replica.Load(); rep != nil {
			w.Header().Set("Location", rep.PrimaryURL())
			writeError(w, http.StatusMisdirectedRequest,
				"read-only replica: send writes to primary "+rep.PrimaryURL())
			return
		}
		next(w, r)
	}
}

// handleSnapshot serves a consistent point-in-time snapshot for replica
// bootstrap. The primary's log is not truncated, so a tail started at
// X-Snapshot-LSN+1 has no gap.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	data, lsn, err := s.st().SnapshotBytes()
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Snapshot-LSN", strconv.FormatUint(lsn, 10))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// handleWALStream streams log frames from ?from= onward as a chunked
// octet stream, holding the connection open and pushing new frames as
// the primary commits. While idle it interleaves heartbeat frames
// carrying the primary's last LSN, so followers can measure lag and
// liveness. A from already folded into the primary's snapshot gets 410:
// the follower must re-bootstrap.
func (s *Server) handleWALStream(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	store := s.st()
	if store.Dir() == "" {
		writeError(w, http.StatusBadRequest, "wal streaming requires a durable store")
		return
	}
	from := uint64(1)
	if raw := r.URL.Query().Get("from"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad from: "+raw)
			return
		}
		from = v
	}
	tail, err := wal.OpenTail(store.Dir(), from)
	if errors.Is(err, wal.ErrGap) {
		writeError(w, http.StatusGone, err.Error())
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	defer tail.Close()

	// Register the stream so /metrics can report this follower's lag as
	// observed from the primary.
	info := &walStreamInfo{peer: r.RemoteAddr}
	info.sentLSN.Store(from - 1)
	id := s.walStreamSeq.Add(1)
	s.walStreams.Store(id, info)
	defer s.walStreams.Delete(id)

	fl, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	send := func(b []byte) bool {
		if _, err := w.Write(b); err != nil {
			return false
		}
		if canFlush {
			fl.Flush()
		}
		return true
	}
	heartbeat := func() []byte {
		return wal.AppendWireFrame(nil, wal.Record{LSN: s.st().AppliedLSN(), Op: wal.OpHeartbeat})
	}
	// Immediate heartbeat: the follower learns the primary's position
	// (and that the link is up) before the first record arrives.
	if !send(heartbeat()) {
		return
	}
	lastSend := time.Now()
	ctx := r.Context()
	for {
		// s.closed makes streams exit during shutdown so Close's drain
		// (which waits on the instrument wait-group) can complete.
		if s.closed.Load() || ctx.Err() != nil {
			return
		}
		b, _, err := tail.Next()
		if err != nil {
			// Gap (a checkpoint overtook this tail) or I/O failure. The
			// response is already streaming, so just cut it; the follower
			// reconnects and gets the 410 verdict on a fresh request.
			return
		}
		if len(b) > 0 {
			if !send(b) {
				return
			}
			info.sentLSN.Store(tail.NextLSN() - 1)
			lastSend = time.Now()
			continue // keep draining without sleeping while behind
		}
		if time.Since(lastSend) >= s.cfg.ReplicationHeartbeat {
			if !send(heartbeat()) {
				return
			}
			lastSend = time.Now()
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(s.cfg.ReplicationPoll):
		}
	}
}

// ---- follower side: Replicator ------------------------------------------

// ReplicaConfig tunes a Replicator. Primary and Dir are required.
type ReplicaConfig struct {
	// Primary is the primary's base URL (scheme optional, http assumed).
	Primary string
	// Dir is the follower's own durable directory.
	Dir string
	// Client issues the long-lived streaming requests (default: a client
	// with no overall timeout — the stream is meant to live forever).
	Client *http.Client
	// BackoffBase/BackoffMax bound the jittered exponential reconnect
	// backoff (defaults 100ms / 5s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	Logger      *slog.Logger
}

// ReplicaStatus is a point-in-time view of replication health.
type ReplicaStatus struct {
	Primary    string  `json:"primary"`
	State      string  `json:"state"` // streaming | bootstrapping | degraded
	Connected  bool    `json:"connected"`
	AppliedLSN uint64  `json:"applied_lsn"`
	PrimaryLSN uint64  `json:"primary_lsn"`
	LagSeconds float64 `json:"lag_seconds"`
	Reconnects uint64  `json:"reconnects"`
	Resyncs    uint64  `json:"resyncs"`
}

// Replicator tails a primary's WAL into a local durable store.
type Replicator struct {
	cfg    ReplicaConfig
	client *http.Client
	log    *slog.Logger

	store  atomic.Pointer[core.Store]
	onSwap func(*core.Store) // set by Server.AttachReplica

	// events receives replica lifecycle transitions (resync, degraded
	// enter/exit); set by Server.AttachReplica. A nil journal is inert.
	events atomic.Pointer[metrics.Journal]

	mu           sync.Mutex
	state        string
	connected    bool
	primaryLSN   uint64
	lastCaughtUp time.Time
	reconnects   uint64
	resyncs      uint64

	cancel   context.CancelFunc
	done     chan struct{}
	stopOnce sync.Once
}

// NewReplicator opens the follower's local store, bootstrapping it from
// the primary's /snapshot when the directory is empty. With existing
// local state an unreachable primary is NOT an error: the follower
// starts degraded, serves its stale reads, and Run keeps retrying. With
// no local state there is nothing to serve, so bootstrap failure is
// fatal.
func NewReplicator(ctx context.Context, cfg ReplicaConfig) (*Replicator, error) {
	if cfg.Primary == "" || cfg.Dir == "" {
		return nil, fmt.Errorf("server: replicator needs a primary URL and a directory")
	}
	if !strings.Contains(cfg.Primary, "://") {
		cfg.Primary = "http://" + cfg.Primary
	}
	cfg.Primary = strings.TrimRight(cfg.Primary, "/")
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 100 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 5 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	rep := &Replicator{
		cfg:          cfg,
		client:       cfg.Client,
		log:          cfg.Logger,
		state:        "degraded",
		lastCaughtUp: time.Now(),
	}
	if rep.client == nil {
		rep.client = &http.Client{}
	}
	// A private journal captures bootstrap events recorded before a
	// server attaches; AttachReplica replays them into the shared one.
	rep.events.Store(metrics.NewJournal(0))
	if hasStoreState(cfg.Dir) {
		st, err := core.Open(core.Options{Dir: cfg.Dir})
		if err != nil {
			return nil, fmt.Errorf("server: replica open %s: %w", cfg.Dir, err)
		}
		rep.store.Store(st)
		return rep, nil
	}
	if err := rep.resync(ctx); err != nil {
		return nil, fmt.Errorf("server: replica bootstrap from %s: %w", cfg.Primary, err)
	}
	return rep, nil
}

func hasStoreState(dir string) bool {
	for _, name := range []string{"snapshot.db", "wal.log"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
			return true
		}
	}
	return false
}

// Store returns the follower's current store (it changes across
// re-bootstraps). The caller owns closing the final store after Stop.
func (rep *Replicator) Store() *core.Store { return rep.store.Load() }

// PrimaryURL reports the primary this follower tails.
func (rep *Replicator) PrimaryURL() string { return rep.cfg.Primary }

// Status reports replication health. Lag is zero while connected and
// caught up to the primary's last advertised LSN; otherwise it is the
// time since the follower was last known caught up — i.e. the staleness
// bound on reads it is serving.
func (rep *Replicator) Status() ReplicaStatus {
	applied := rep.Store().AppliedLSN()
	rep.mu.Lock()
	defer rep.mu.Unlock()
	st := ReplicaStatus{
		Primary:    rep.cfg.Primary,
		State:      rep.state,
		Connected:  rep.connected,
		AppliedLSN: applied,
		PrimaryLSN: rep.primaryLSN,
		Reconnects: rep.reconnects,
		Resyncs:    rep.resyncs,
	}
	if !(rep.connected && applied >= rep.primaryLSN) {
		st.LagSeconds = time.Since(rep.lastCaughtUp).Seconds()
	}
	return st
}

// Start launches the tailing loop. Stop cancels it and waits.
func (rep *Replicator) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	rep.cancel = cancel
	rep.done = make(chan struct{})
	go rep.run(ctx)
}

// Stop halts tailing. It does not close the store — readers may still
// be serving from it; close Store() once the HTTP layer has drained.
func (rep *Replicator) Stop() {
	rep.stopOnce.Do(func() {
		if rep.cancel != nil {
			rep.cancel()
			<-rep.done
		}
	})
}

// run reconnects forever with jittered exponential backoff, resuming
// each attempt from the follower's applied LSN. Any successful
// connection resets the backoff.
func (rep *Replicator) run(ctx context.Context) {
	defer close(rep.done)
	backoff := rep.cfg.BackoffBase
	for {
		connected, err := rep.streamOnce(ctx)
		rep.setConnected(false, "degraded")
		if ctx.Err() != nil {
			return
		}
		if connected {
			backoff = rep.cfg.BackoffBase
		}
		if err != nil {
			rep.log.Warn("replication stream interrupted",
				slog.String("primary", rep.cfg.Primary),
				slog.Uint64("applied_lsn", rep.Store().AppliedLSN()),
				slog.Duration("retry_in", backoff),
				slog.Any("error", err))
		}
		// Full jitter in [backoff/2, backoff): concurrent followers that
		// lost the same primary spread their reconnects.
		delay := backoff/2 + rand.N(backoff/2)
		if !connected || err != nil {
			backoff = min(backoff*2, rep.cfg.BackoffMax)
		} else {
			delay = 0 // clean EOF (primary restarting): retry immediately
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(delay):
		}
	}
}

// streamOnce opens one /wal stream and applies it until it breaks.
// connected reports whether the primary was reached at all (backoff
// reset). A clean EOF returns (true, nil).
func (rep *Replicator) streamOnce(ctx context.Context) (connected bool, err error) {
	from := rep.Store().AppliedLSN() + 1
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		rep.cfg.Primary+"/wal?from="+strconv.FormatUint(from, 10), nil)
	if err != nil {
		return false, err
	}
	resp, err := rep.client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		// The primary checkpointed past our position: the log records we
		// need are gone. Re-bootstrap from its snapshot.
		rep.log.Info("replication gap, re-bootstrapping from snapshot",
			slog.String("primary", rep.cfg.Primary), slog.Uint64("from", from))
		return true, rep.resync(ctx)
	default:
		return false, fmt.Errorf("primary /wal: status %d", resp.StatusCode)
	}
	rep.setConnected(true, "streaming")
	rep.mu.Lock()
	rep.reconnects++
	rep.mu.Unlock()

	sr := wal.NewStreamReader(resp.Body)
	for {
		rec, rerr := sr.Next()
		if rerr == io.EOF {
			return true, nil // primary closed cleanly (shutdown/restart)
		}
		if rerr != nil {
			// Torn mid-frame or failed checksum: nothing partial was
			// applied; reconnect resumes from the applied LSN.
			return true, rerr
		}
		if rec.Op == wal.OpHeartbeat {
			rep.notePrimaryLSN(rec.LSN)
			continue
		}
		if _, aerr := rep.Store().ApplyReplicated(rec); aerr != nil {
			if errors.Is(aerr, core.ErrReplicaGap) {
				rep.log.Warn("replication sequence break, re-bootstrapping",
					slog.Any("error", aerr))
				return true, rep.resync(ctx)
			}
			return true, aerr
		}
		rep.notePrimaryLSN(rec.LSN)
	}
}

// resync replaces the local store with a fresh bootstrap from the
// primary's snapshot. The swap happens under live read traffic: the new
// store is installed and published first (via onSwap), while in-flight
// readers finish on the old store's snapshots.
func (rep *Replicator) resync(ctx context.Context) error {
	rep.setState("bootstrapping")
	rep.events.Load().Record("replica-resync", "primary="+rep.cfg.Primary)
	rep.mu.Lock()
	rep.resyncs++
	rep.mu.Unlock()

	data, snapLSN, err := rep.fetchSnapshot(ctx)
	if err != nil {
		rep.setState("degraded")
		return err
	}
	// Close the old store's log before rewriting its directory. Reads on
	// it still work (the WAL is write-path only), and Close is idempotent
	// so a failed resync can retry this path safely.
	if old := rep.Store(); old != nil {
		if err := old.Close(); err != nil {
			rep.setState("degraded")
			return err
		}
	}
	if _, err := wal.InstallSnapshot(rep.cfg.Dir, data); err != nil {
		rep.setState("degraded")
		return err
	}
	st, err := core.Open(core.Options{Dir: rep.cfg.Dir})
	if err != nil {
		rep.setState("degraded")
		return err
	}
	rep.store.Store(st)
	if rep.onSwap != nil {
		rep.onSwap(st)
	}
	rep.events.Load().Record("snapshot-install", fmt.Sprintf("primary=%s lsn=%d", rep.cfg.Primary, snapLSN))
	rep.mu.Lock()
	if snapLSN > rep.primaryLSN {
		rep.primaryLSN = snapLSN
	}
	rep.lastCaughtUp = time.Now()
	rep.mu.Unlock()
	rep.log.Info("replica bootstrapped",
		slog.String("primary", rep.cfg.Primary), slog.Uint64("snapshot_lsn", snapLSN))
	return nil
}

func (rep *Replicator) fetchSnapshot(ctx context.Context) ([]byte, uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.cfg.Primary+"/snapshot", nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := rep.client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("primary /snapshot: status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	lsn, _ := strconv.ParseUint(resp.Header.Get("X-Snapshot-LSN"), 10, 64)
	return data, lsn, nil
}

func (rep *Replicator) setState(state string) {
	rep.mu.Lock()
	prev := rep.state
	rep.state = state
	rep.mu.Unlock()
	rep.noteTransition(prev, state)
}

func (rep *Replicator) setConnected(c bool, state string) {
	rep.mu.Lock()
	prev := rep.state
	rep.connected = c
	rep.state = state
	rep.mu.Unlock()
	rep.noteTransition(prev, state)
}

// noteTransition journals replica state changes: entering and leaving
// degraded mode (only actual transitions, not every reconnect attempt).
func (rep *Replicator) noteTransition(prev, state string) {
	if prev == state {
		return
	}
	j := rep.events.Load()
	switch {
	case state == "degraded":
		j.Record("replica-degraded", "primary="+rep.cfg.Primary)
	case prev == "degraded":
		j.Record("replica-recovered", "primary="+rep.cfg.Primary+" state="+state)
	}
}

// notePrimaryLSN folds a heartbeat or applied record into the lag
// tracking: the primary is at least at lsn, and if we have applied
// everything it advertised, we are caught up as of now.
func (rep *Replicator) notePrimaryLSN(lsn uint64) {
	applied := rep.Store().AppliedLSN()
	rep.mu.Lock()
	if lsn > rep.primaryLSN {
		rep.primaryLSN = lsn
	}
	if rep.connected && applied >= rep.primaryLSN {
		rep.lastCaughtUp = time.Now()
	}
	rep.mu.Unlock()
}
