package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"sqlgraph/internal/core"
	"sqlgraph/internal/faultinject"
	"sqlgraph/internal/wal"
)

// replCfg is a Config tuned for fast replication tests: tight stream
// polling and heartbeats, quiet logs.
func replCfg() Config {
	return Config{
		ReplicationPoll:      2 * time.Millisecond,
		ReplicationHeartbeat: 15 * time.Millisecond,
		ErrorLog:             log.New(io.Discard, "", 0),
	}
}

func quietSlog() *slog.Logger { return slog.New(slog.NewTextHandler(io.Discard, nil)) }

// flakyProxy sits between the follower and the primary so tests can
// swap the primary's address across restarts (httptest URLs change),
// take the primary "off the network", and cut streams mid-frame after
// an exact number of bytes (faultinject.ByteLimit on the response
// path — the replication analogue of a torn disk write).
type flakyProxy struct {
	ts *httptest.Server

	mu      sync.Mutex
	backend string
	down    bool
	limit   int // bytes per /wal response; < 0 means unlimited
}

func newFlakyProxy(backend string) *flakyProxy {
	p := &flakyProxy{backend: backend, limit: -1}
	p.ts = httptest.NewServer(http.HandlerFunc(p.handle))
	return p
}

func (p *flakyProxy) setBackend(url string) { p.mu.Lock(); p.backend = url; p.mu.Unlock() }
func (p *flakyProxy) setDown(d bool)        { p.mu.Lock(); p.down = d; p.mu.Unlock() }
func (p *flakyProxy) setLimit(n int)        { p.mu.Lock(); p.limit = n; p.mu.Unlock() }

func (p *flakyProxy) handle(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	backend, down := p.backend, p.down
	p.mu.Unlock()
	if down {
		http.Error(w, "proxy: primary unreachable", http.StatusBadGateway)
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, backend+r.URL.RequestURI(), r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	// down and limit are re-read per chunk so a live /wal stream is cut
	// the moment the test flips them, not just on the next connection.
	var gate func([]byte) (int, error)
	fl, _ := w.(http.Flusher)
	buf := make([]byte, 512)
	for {
		n, rerr := resp.Body.Read(buf)
		p.mu.Lock()
		down, limit := p.down, p.limit
		p.mu.Unlock()
		if down {
			panic(http.ErrAbortHandler)
		}
		if gate == nil && limit >= 0 && r.URL.Path == "/wal" {
			gate = faultinject.ByteLimit(limit)
		}
		if n > 0 {
			chunk := buf[:n]
			if gate != nil {
				m, gerr := gate(chunk)
				if gerr != nil {
					// Forward the partial frame, then sever the connection
					// abruptly: the follower sees a mid-frame cut.
					_, _ = w.Write(chunk[:m])
					if fl != nil {
						fl.Flush()
					}
					panic(http.ErrAbortHandler)
				}
			}
			if _, err := w.Write(chunk); err != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		}
		if rerr != nil {
			return
		}
	}
}

// replEnv is a full primary/proxy/follower topology.
type replEnv struct {
	t *testing.T

	pDir   string
	pStore *core.Store
	pSrv   *Server
	pTS    *httptest.Server

	proxy *flakyProxy

	rDir string
	rep  *Replicator
	rSrv *Server
	rTS  *httptest.Server
}

func (e *replEnv) startPrimary() {
	e.t.Helper()
	var err error
	if hasStoreState(e.pDir) {
		e.pStore, err = core.Open(core.Options{Dir: e.pDir})
	} else {
		e.pStore, err = core.Load(figure2a(e.t), core.Options{Dir: e.pDir, SnapshotEvery: -1})
	}
	if err != nil {
		e.t.Fatal(err)
	}
	e.pSrv = New(e.pStore, replCfg())
	e.pTS = httptest.NewServer(e.pSrv.Handler())
	if e.proxy != nil {
		e.proxy.setBackend(e.pTS.URL)
	}
}

// stopPrimary simulates a primary crash/shutdown: active /wal streams
// are cut and the address dies (the restarted primary gets a new one).
func (e *replEnv) stopPrimary() {
	e.t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e.pSrv.Close(ctx); err != nil {
		e.t.Fatalf("primary close: %v", err)
	}
	e.pTS.Close()
	if err := e.pStore.Close(); err != nil {
		e.t.Fatalf("primary store close: %v", err)
	}
}

func (e *replEnv) startFollower() {
	e.t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := NewReplicator(ctx, ReplicaConfig{
		Primary:     e.proxy.ts.URL,
		Dir:         e.rDir,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		Logger:      quietSlog(),
	})
	if err != nil {
		e.t.Fatal(err)
	}
	e.rep = rep
	if e.rSrv == nil {
		e.rSrv = New(rep.Store(), replCfg())
		e.rTS = httptest.NewServer(e.rSrv.Handler())
	} else {
		e.rSrv.SetStore(rep.Store())
	}
	e.rSrv.AttachReplica(rep)
	rep.Start()
}

// stopFollower halts tailing and closes the follower's store (its
// durable state stays on disk for the next start).
func (e *replEnv) stopFollower() {
	e.t.Helper()
	e.rep.Stop()
	if err := e.rep.Store().Close(); err != nil {
		e.t.Fatalf("follower store close: %v", err)
	}
}

func newReplEnv(t *testing.T) *replEnv {
	e := &replEnv{t: t, pDir: t.TempDir(), rDir: t.TempDir()}
	e.startPrimary()
	e.proxy = newFlakyProxy(e.pTS.URL)
	e.startFollower()
	t.Cleanup(func() {
		e.rep.Stop()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := e.rSrv.Close(ctx); err != nil {
			t.Errorf("follower server close: %v", err)
		}
		e.rTS.Close()
		if err := e.rep.Store().Close(); err != nil {
			t.Errorf("follower store close: %v", err)
		}
		if err := e.pSrv.Close(ctx); err != nil {
			t.Errorf("primary server close: %v", err)
		}
		e.pTS.Close()
		e.proxy.ts.Close()
		if err := e.pStore.Close(); err != nil {
			t.Errorf("primary store close: %v", err)
		}
	})
	return e
}

// do issues one request against a base URL and returns status and body.
func do(t testing.TB, method, url string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func waitUntil(t testing.TB, timeout time.Duration, msg string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", msg)
}

// addVertex writes one vertex through the primary.
func (e *replEnv) addVertex(id int64) {
	e.t.Helper()
	code, body := do(e.t, "POST", e.pTS.URL+"/vertex", vertexBody{ID: id, Attrs: map[string]any{"n": id}})
	if code != http.StatusCreated {
		e.t.Fatalf("primary POST /vertex %d: %d %s", id, code, body)
	}
}

// followerSees reports whether the follower serves the vertex.
func (e *replEnv) followerSees(id int64) bool {
	code, _ := do(e.t, "GET", fmt.Sprintf("%s/vertex/%d", e.rTS.URL, id), nil)
	return code == http.StatusOK
}

func (e *replEnv) followerHealth() map[string]any {
	e.t.Helper()
	code, body := do(e.t, "GET", e.rTS.URL+"/healthz", nil)
	if code != http.StatusOK {
		e.t.Fatalf("follower /healthz: %d %s", code, body)
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		e.t.Fatal(err)
	}
	return m
}

// assertConvergedEnv waits until the follower's applied LSN matches the
// primary's, then compares served state and runs fsck on both dirs.
func (e *replEnv) assertConverged(timeout time.Duration) {
	e.t.Helper()
	want := e.pStore.AppliedLSN()
	waitUntil(e.t, timeout, fmt.Sprintf("follower to reach LSN %d", want), func() bool {
		return e.rep.Store().AppliedLSN() >= want
	})
	p, f := e.pStore, e.rep.Store()
	if pc, fc := p.CountVertices(), f.CountVertices(); pc != fc {
		e.t.Fatalf("vertices: primary %d, follower %d", pc, fc)
	}
	if pc, fc := p.CountEdges(), f.CountEdges(); pc != fc {
		e.t.Fatalf("edges: primary %d, follower %d", pc, fc)
	}
	if vs := core.Check(f); len(vs) != 0 {
		e.t.Fatalf("follower invariants: %v", vs)
	}
}

func TestReplicationEndToEnd(t *testing.T) {
	e := newReplEnv(t)

	// Bootstrap carried the bulk-loaded graph over.
	if !e.followerSees(1) {
		t.Fatal("follower does not serve bootstrapped vertex 1")
	}

	// A write through the primary shows up on the follower.
	e.addVertex(100)
	waitUntil(t, 5*time.Second, "vertex 100 on follower", func() bool { return e.followerSees(100) })
	e.assertConverged(5 * time.Second)

	// Roles on /healthz: primary side.
	codeP, bodyP := do(t, "GET", e.pTS.URL+"/healthz", nil)
	var hp map[string]any
	if err := json.Unmarshal(bodyP, &hp); err != nil || codeP != http.StatusOK {
		t.Fatalf("primary /healthz: %d %s (%v)", codeP, bodyP, err)
	}
	if hp["role"] != "primary" || hp["status"] != "ok" || hp["durable"] != true {
		t.Fatalf("primary health = %v", hp)
	}

	// Follower side: role, LSNs, connection state.
	waitUntil(t, 5*time.Second, "follower to report connected", func() bool {
		return e.followerHealth()["connected"] == true
	})
	h := e.followerHealth()
	if h["role"] != "replica" || h["status"] != "ok" || h["state"] != "streaming" {
		t.Fatalf("follower health = %v", h)
	}
	if h["applied_lsn"].(float64) != float64(e.pStore.AppliedLSN()) {
		t.Fatalf("follower applied_lsn = %v, primary at %d", h["applied_lsn"], e.pStore.AppliedLSN())
	}

	// Mutations on the follower are refused with 421 + the primary URL.
	for _, reqCase := range []struct {
		method, path string
		body         any
	}{
		{"POST", "/vertex", vertexBody{ID: 999}},
		{"DELETE", "/vertex/1", nil},
		{"PATCH", "/vertex/1/attrs", attrPatch{Set: map[string]any{"x": 1}}},
		{"POST", "/edge", edgeBody{ID: 999, From: 1, To: 2, Label: "knows"}},
		{"DELETE", "/edge/7", nil},
		{"PATCH", "/edge/7/attrs", attrPatch{Set: map[string]any{"x": 1}}},
		{"POST", "/admin/vacuum", nil},
		{"POST", "/admin/checkpoint", nil},
	} {
		code, body := do(t, reqCase.method, e.rTS.URL+reqCase.path, reqCase.body)
		if code != http.StatusMisdirectedRequest {
			t.Fatalf("%s %s on follower: %d %s, want 421", reqCase.method, reqCase.path, code, body)
		}
		if !bytes.Contains(body, []byte(e.proxy.ts.URL)) {
			t.Fatalf("%s %s: 421 body %s does not name the primary", reqCase.method, reqCase.path, body)
		}
	}
	// Reads still work on the follower, and the primary still mutates.
	if !e.followerSees(1) {
		t.Fatal("follower stopped serving reads")
	}
	e.addVertex(101)

	// Replication gauges are exposed on the follower's /metrics.
	_, met := do(t, "GET", e.rTS.URL+"/metrics", nil)
	for _, name := range []string{
		"sqlgraphd_replica_applied_lsn", "sqlgraphd_replica_primary_lsn",
		"sqlgraphd_replica_lag_seconds", "sqlgraphd_replica_connected",
		"sqlgraphd_replica_reconnects_total", "sqlgraphd_replica_resyncs_total",
	} {
		if !bytes.Contains(met, []byte(name)) {
			t.Fatalf("follower /metrics missing %s:\n%s", name, met)
		}
	}
	// The primary does not report replica gauges.
	_, pmet := do(t, "GET", e.pTS.URL+"/metrics", nil)
	if bytes.Contains(pmet, []byte("sqlgraphd_replica_applied_lsn")) {
		t.Fatal("primary /metrics reports replica gauges")
	}
}

func TestReplicaDegradedServingAndAutoResume(t *testing.T) {
	e := newReplEnv(t)
	e.addVertex(100)
	waitUntil(t, 5*time.Second, "initial convergence", func() bool { return e.followerSees(100) })

	// Primary drops off the network. The follower keeps serving what it
	// has, flags the disconnect, and reports growing staleness.
	e.proxy.setDown(true)
	e.addVertex(200) // lands on the primary only
	waitUntil(t, 5*time.Second, "follower to notice disconnect", func() bool {
		return e.followerHealth()["connected"] == false
	})
	if !e.followerSees(100) || !e.followerSees(1) {
		t.Fatal("degraded follower stopped serving snapshot reads")
	}
	if e.followerSees(200) {
		t.Fatal("follower sees a write it cannot have received")
	}
	var lag1 float64
	waitUntil(t, 5*time.Second, "nonzero lag", func() bool {
		lag1 = e.followerHealth()["lag_seconds"].(float64)
		return lag1 > 0
	})
	time.Sleep(30 * time.Millisecond)
	if lag2 := e.followerHealth()["lag_seconds"].(float64); lag2 <= lag1 {
		t.Fatalf("lag did not grow while disconnected: %g then %g", lag1, lag2)
	}

	// The primary returns; the follower resumes on its own (backoff-capped
	// retry loop), catches up, and the lag collapses.
	e.proxy.setDown(false)
	waitUntil(t, 10*time.Second, "auto-resume", func() bool { return e.followerSees(200) })
	e.assertConverged(5 * time.Second)
	waitUntil(t, 5*time.Second, "lag back to zero", func() bool {
		h := e.followerHealth()
		return h["connected"] == true && h["lag_seconds"].(float64) == 0
	})
	if n := e.rep.Status().Reconnects; n < 2 {
		t.Fatalf("reconnects = %d, want >= 2 after an outage", n)
	}
}

func TestReplicationSurvivesMidFrameCuts(t *testing.T) {
	e := newReplEnv(t)
	waitUntil(t, 5*time.Second, "initial connect", func() bool { return e.rep.Status().Connected })

	// Every /wal response is severed after 150 bytes — a few frames plus a
	// partial one. The follower must verify checksums, drop the torn
	// tail, and resume from its applied LSN each time.
	e.proxy.setLimit(150)
	for i := int64(100); i < 130; i++ {
		e.addVertex(i)
	}
	e.assertConverged(30 * time.Second)
	e.proxy.setLimit(-1)

	// Torn deliveries forced many reconnects, never a duplicate apply:
	// replaying the full primary log against the converged follower is a
	// pure no-op.
	e.rep.Stop()
	tr, err := wal.OpenTail(e.pDir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	replayed := 0
	for {
		b, infos, err := tr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if infos == nil {
			break
		}
		sr := wal.NewStreamReader(bytes.NewReader(b))
		for {
			rec, rerr := sr.Next()
			if rerr == io.EOF {
				break
			}
			if rerr != nil {
				t.Fatal(rerr)
			}
			applied, aerr := e.rep.Store().ApplyReplicated(rec)
			if aerr != nil {
				t.Fatalf("double replay LSN %d: %v", rec.LSN, aerr)
			}
			if applied {
				t.Fatalf("double replay applied LSN %d again", rec.LSN)
			}
			replayed++
		}
	}
	if replayed == 0 {
		t.Fatal("double replay exercised no records")
	}
	if n := e.rep.Status().Reconnects; n < 3 {
		t.Fatalf("reconnects = %d, want several under repeated cuts", n)
	}
}

func TestReplicaResyncAfterCheckpointGap(t *testing.T) {
	e := newReplEnv(t)
	e.addVertex(100)
	waitUntil(t, 5*time.Second, "initial convergence", func() bool { return e.followerSees(100) })
	baseResyncs := e.rep.Status().Resyncs

	// While the follower is cut off, the primary advances AND checkpoints,
	// truncating the log records the follower would need.
	e.proxy.setDown(true)
	for i := int64(200); i < 210; i++ {
		e.addVertex(i)
	}
	if code, body := do(t, "POST", e.pTS.URL+"/admin/checkpoint", nil); code != http.StatusOK {
		t.Fatalf("primary checkpoint: %d %s", code, body)
	}

	// On reconnect the follower gets 410, re-bootstraps from /snapshot,
	// and the follower's HTTP server serves the swapped store.
	e.proxy.setDown(false)
	waitUntil(t, 10*time.Second, "resync convergence", func() bool { return e.followerSees(209) })
	e.assertConverged(5 * time.Second)
	if n := e.rep.Status().Resyncs; n <= baseResyncs {
		t.Fatalf("resyncs = %d, want > %d after checkpoint gap", n, baseResyncs)
	}
	if h := e.followerHealth(); h["role"] != "replica" {
		t.Fatalf("follower health after resync = %v", h)
	}
	// The loop passes through "degraded" for an instant between the
	// resync returning and the next stream attempt, so poll for the
	// steady state rather than sampling it.
	waitUntil(t, 5*time.Second, "streaming state after resync", func() bool {
		return e.followerHealth()["state"] == "streaming"
	})
}

// TestReplicationCrashRestartSweep kills the primary, kills the
// follower, and cuts streams mid-frame at random, checking after every
// fault that the follower reconverges to the primary's exact state and
// both directories recover fsck-clean.
func TestReplicationCrashRestartSweep(t *testing.T) {
	e := newReplEnv(t)
	rng := rand.New(rand.NewPCG(7, 11))
	next := int64(1000)
	rounds := 6
	if testing.Short() {
		rounds = 3
	}
	for round := 0; round < rounds; round++ {
		fault := rng.IntN(3)
		switch fault {
		case 0: // mid-frame stream cuts while writes flow
			e.proxy.setLimit(100 + rng.IntN(200))
		case 1: // primary crash/restart (new address, same data dir)
			e.stopPrimary()
			e.startPrimary()
		case 2: // follower crash/restart (reopens its own durable state)
			e.stopFollower()
			e.startFollower()
		}
		n := 3 + rng.IntN(5)
		for i := 0; i < n; i++ {
			e.addVertex(next)
			next++
		}
		e.proxy.setLimit(-1)
		e.assertConverged(30 * time.Second)
		if vs := core.Check(e.pStore); len(vs) != 0 {
			t.Fatalf("round %d (fault %d): primary invariants: %v", round, fault, vs)
		}
	}
	// Final offline verification of the follower's directory.
	e.rep.Stop()
	if vs, err := core.Fsck(e.rDir); err != nil || len(vs) != 0 {
		t.Fatalf("follower fsck: %v, %v", vs, err)
	}
	if vs, err := core.Fsck(e.pDir); err != nil || len(vs) != 0 {
		t.Fatalf("primary fsck: %v, %v", vs, err)
	}
}
