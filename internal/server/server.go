// Package server is the HTTP serving layer over a sqlgraph store: a
// stdlib-only JSON API exposing Gremlin queries, translation, point
// reads, mutations, statistics, and health, built for concurrent
// multi-client traffic.
//
// Reads run on pinned MVCC snapshots — one per request, or one per
// client-held session with a TTL lease (see session.go) — so they never
// block the store's serialized writer. Production-shaped robustness is
// layered as middleware: admission control bounds in-flight work (429 +
// Retry-After on saturation), every request carries a context deadline
// (504 on expiry), panics become 500s, and graceful shutdown drains
// admitted requests before unpinning every snapshot.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sqlgraph/internal/blueprints"
	"sqlgraph/internal/core"
	"sqlgraph/internal/engine"
	"sqlgraph/internal/metrics"
	"sqlgraph/internal/trace"
)

// Config tunes the serving layer. Zero values pick production-shaped
// defaults.
type Config struct {
	// MaxInFlight bounds concurrently executing requests (default 64).
	MaxInFlight int
	// MaxQueue bounds requests waiting for admission beyond MaxInFlight;
	// anything past that is answered 429 immediately (default MaxInFlight).
	MaxQueue int
	// RequestTimeout is the default per-request deadline; requests may
	// shorten (never extend) it with "timeout_ms" (default 30s).
	RequestTimeout time.Duration
	// MaxBodyBytes caps request body size; larger bodies get 413
	// (default 1 MiB).
	MaxBodyBytes int64
	// SessionTTL is the snapshot-session lease; every use renews it, and
	// an unused session expires and unpins (default 60s).
	SessionTTL time.Duration
	// MaxSessions bounds concurrently open sessions (default 1024).
	MaxSessions int
	// RetryAfter is the hint returned with 429 responses (default 1s).
	RetryAfter time.Duration
	// ErrorLog is the legacy logger field. When Logger is unset and
	// ErrorLog is set, a text slog handler is layered over its writer so
	// existing configurations keep capturing server output.
	ErrorLog *log.Logger
	// Logger receives the structured request log: one summary line per
	// HTTP request plus panic stacks and slow-query warnings (default:
	// derived from ErrorLog if set, else slog.Default()).
	Logger *slog.Logger
	// SlowQuery is the threshold above which a query trace lands in the
	// slow-query log (default 250ms; negative disables slow capture).
	SlowQuery time.Duration
	// TraceBuffer is how many recent traces per kind the /debug/queries
	// rings retain (default 128).
	TraceBuffer int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ when set.
	// Off by default: profiles expose internals, so turning them on is a
	// deliberate operator decision.
	EnablePprof bool
	// ReplicationPoll is how often an idle /wal stream re-checks the log
	// for new frames (default 25ms).
	ReplicationPoll time.Duration
	// ReplicationHeartbeat is how often an idle /wal stream emits a
	// heartbeat frame so followers can measure lag and liveness
	// (default 500ms).
	ReplicationHeartbeat time.Duration
	// SampleInterval is the history sampler cadence: every registered
	// metric is snapshotted this often into the /debug/history ring
	// (default 1s; negative disables sampling).
	SampleInterval time.Duration
	// SampleRetention is how many history samples the ring keeps
	// (default 600 — ten minutes at the default cadence).
	SampleRetention int
	// EventBuffer is how many lifecycle events /debug/events retains
	// (default 256).
	EventBuffer int
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = c.MaxInFlight
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 60 * time.Second
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.ReplicationPoll <= 0 {
		c.ReplicationPoll = 25 * time.Millisecond
	}
	if c.ReplicationHeartbeat <= 0 {
		c.ReplicationHeartbeat = 500 * time.Millisecond
	}
	if c.Logger == nil {
		if c.ErrorLog != nil {
			c.Logger = slog.New(slog.NewTextHandler(c.ErrorLog.Writer(), nil))
		} else {
			c.Logger = slog.Default()
		}
	}
	return c
}

// Server serves one store over HTTP. Create with New, expose with
// Handler, and stop with Close (which drains in-flight requests and
// unpins every snapshot; the store itself is not closed).
type Server struct {
	// store is swappable: a replica re-bootstrapping from a primary
	// snapshot installs a fresh store under live traffic. Handlers grab
	// it once per request via st(); in-flight readers keep their pinned
	// snapshot on the old store, which stays valid in memory.
	store   atomic.Pointer[core.Store]
	replica atomic.Pointer[Replicator]
	cfg     Config
	adm     *admission
	met     *telemetry
	sess    *sessions
	mux     *http.ServeMux

	events  *metrics.Journal // lifecycle event journal, shared across store swaps
	sampler *metrics.Sampler // /debug/history ring (nil when disabled)

	// Per-follower /wal stream registry for primary-side lag gauges.
	walStreams   sync.Map // stream id (uint64) -> *walStreamInfo
	walStreamSeq atomic.Uint64

	lastSaturated atomic.Int64 // unix nanos of the last saturation event (episode debounce)

	closed atomic.Bool
	wg     sync.WaitGroup // in-flight handlers and abandoned workers
}

// New builds a Server over an open store.
func New(store *core.Store, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		adm:    newAdmission(cfg.MaxInFlight, cfg.MaxQueue),
		sess:   newSessions(cfg.SessionTTL, cfg.MaxSessions),
		mux:    http.NewServeMux(),
		events: metrics.NewJournal(cfg.EventBuffer),
	}
	s.events.SetLogger(cfg.Logger)
	s.store.Store(store)
	// Telemetry callbacks read through st() so they follow store swaps.
	s.met = newTelemetry(s)
	s.configureTracer(store)
	store.SetEventJournal(s.events)
	if cfg.SampleInterval >= 0 {
		s.sampler = metrics.NewSampler(s.met.reg, cfg.SampleInterval, cfg.SampleRetention)
		s.sampler.Start()
	}
	s.routes()
	return s
}

// st returns the store currently being served.
func (s *Server) st() *core.Store { return s.store.Load() }

// SetStore atomically replaces the served store (replica re-bootstrap).
// The old store is not closed here: in-flight requests and open sessions
// may still hold its snapshots.
func (s *Server) SetStore(store *core.Store) {
	s.configureTracer(store)
	// The journal outlives store swaps: a freshly bootstrapped replica
	// store keeps appending to the same event history.
	store.SetEventJournal(s.events)
	s.store.Store(store)
}

// configureTracer wires the store's trace recorder: retention, slow
// threshold, and the structured logger for slow-query warnings. The
// metrics endpoint scrapes the recorder's counters live rather than
// mirroring them.
func (s *Server) configureTracer(store *core.Store) {
	rec := store.Tracer()
	if s.cfg.TraceBuffer > 0 {
		rec.SetRingSize(s.cfg.TraceBuffer)
	}
	rec.SetSlowThreshold(s.cfg.SlowQuery)
	rec.SetLogger(s.cfg.Logger)
}

// AttachReplica marks this server as a read-only follower fed by rep:
// mutations are refused with 421 pointing at the primary, /healthz and
// /metrics report replication state, and rep's re-bootstraps swap the
// served store.
func (s *Server) AttachReplica(rep *Replicator) {
	s.replica.Store(rep)
	rep.onSwap = s.SetStore
	// Carry events recorded before attachment (bootstrap resync,
	// snapshot install) into the server's journal, then share it.
	if prev := rep.events.Swap(s.events); prev != nil && prev != s.events {
		s.events.Replay(prev.Events())
	}
	s.met.registerReplica(func() ReplicaStatus { return s.replica.Load().Status() })
}

func (s *Server) routes() {
	// Health and metrics bypass admission so they stay responsive under
	// saturation (that is when you need them).
	s.mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealth))
	s.mux.HandleFunc("GET /metrics", s.instrument("/metrics", s.handleMetrics))

	admit := func(route string, h http.HandlerFunc) http.HandlerFunc {
		return s.instrument(route, s.gated(h))
	}
	// Mutations are refused on followers: there is one serialized writer,
	// and it lives on the primary.
	mutate := func(route string, h http.HandlerFunc) http.HandlerFunc {
		return s.instrument(route, s.gated(s.primaryOnly(h)))
	}
	s.mux.HandleFunc("POST /query", admit("/query", s.handleQuery))
	s.mux.HandleFunc("POST /translate", admit("/translate", s.handleTranslate))

	s.mux.HandleFunc("POST /sessions", admit("/sessions", s.handleSessionCreate))
	s.mux.HandleFunc("GET /sessions/{id}", admit("/sessions/{id}", s.handleSessionGet))
	s.mux.HandleFunc("DELETE /sessions/{id}", admit("/sessions/{id}", s.handleSessionDelete))

	s.mux.HandleFunc("GET /vertex/{id}", admit("/vertex/{id}", s.handleVertexGet))
	s.mux.HandleFunc("GET /vertex/{id}/out", admit("/vertex/{id}/out", s.handleVertexEdges))
	s.mux.HandleFunc("GET /vertex/{id}/in", admit("/vertex/{id}/in", s.handleVertexEdges))
	s.mux.HandleFunc("GET /edge/{id}", admit("/edge/{id}", s.handleEdgeGet))

	s.mux.HandleFunc("POST /vertex", mutate("/vertex", s.handleVertexAdd))
	s.mux.HandleFunc("DELETE /vertex/{id}", mutate("/vertex/{id}", s.handleVertexDelete))
	s.mux.HandleFunc("PATCH /vertex/{id}/attrs", mutate("/vertex/{id}/attrs", s.handleVertexAttrs))
	s.mux.HandleFunc("POST /edge", mutate("/edge", s.handleEdgeAdd))
	s.mux.HandleFunc("DELETE /edge/{id}", mutate("/edge/{id}", s.handleEdgeDelete))
	s.mux.HandleFunc("PATCH /edge/{id}/attrs", mutate("/edge/{id}/attrs", s.handleEdgeAttrs))
	s.mux.HandleFunc("POST /batch", mutate("/batch", s.handleBatch))

	s.mux.HandleFunc("GET /stats", admit("/stats", s.handleStats))
	s.mux.HandleFunc("GET /check", admit("/check", s.handleCheck))
	s.mux.HandleFunc("POST /admin/vacuum", mutate("/admin/vacuum", s.handleVacuum))
	s.mux.HandleFunc("POST /admin/checkpoint", mutate("/admin/checkpoint", s.handleCheckpoint))

	// Replication: a follower bootstraps from /snapshot, then tails /wal.
	// Both bypass admission — /wal connections are long-lived (they would
	// permanently occupy admission slots), and both must stay available
	// while the primary is saturated with queries, or replicas fall
	// behind exactly when write volume is highest.
	s.mux.HandleFunc("GET /wal", s.instrument("/wal", s.handleWALStream))
	s.mux.HandleFunc("GET /snapshot", s.instrument("/snapshot", s.handleSnapshot))

	// Trace inspection bypasses admission for the same reason /metrics
	// does: the slow-query log is most valuable when the server is busy.
	s.mux.HandleFunc("GET /debug/queries", s.instrument("/debug/queries", s.handleDebugQueries))
	s.mux.HandleFunc("GET /debug/queries/{id}", s.instrument("/debug/queries/{id}", s.handleDebugQueryGet))

	// Lifecycle events and metric history also bypass admission: they are
	// the tools for diagnosing a saturated or misbehaving server.
	s.mux.HandleFunc("GET /debug/events", s.instrument("/debug/events", s.handleDebugEvents))
	s.mux.HandleFunc("GET /debug/history", s.instrument("/debug/history", s.handleDebugHistory))

	if s.cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// Handler returns the root handler (panic recovery wraps everything).
func (s *Server) Handler() http.Handler { return s.recovered(s.mux) }

// Sessions reports the number of open snapshot sessions.
func (s *Server) Sessions() int { return s.sess.Open() }

// InFlight reports the number of admitted requests.
func (s *Server) InFlight() int { return s.adm.InFlight() }

// Close drains the server: new requests are rejected (503), queued
// requests are woken rejected, admitted requests (including workers
// whose clients already timed out) run to completion or until ctx
// expires, and every session snapshot is unpinned. The store is left
// open for the caller. Close is idempotent; only the first call drains.
func (s *Server) Close(ctx context.Context) error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	if s.sampler != nil {
		s.sampler.Stop()
	}
	s.adm.Close()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = fmt.Errorf("server: drain: %w", ctx.Err())
	}
	s.sess.Shutdown()
	return err
}

// recovered is the outermost middleware: any panic in request handling
// becomes a 500 instead of tearing the daemon down.
func (s *Server) recovered(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.met.addPanic()
				s.cfg.Logger.Error("panic serving request",
					slog.String("method", r.Method),
					slog.String("path", r.URL.Path),
					slog.Any("panic", rec),
					slog.String("stack", string(debug.Stack())))
				writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", rec))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// reqState carries per-request observability state between middleware
// layers: the trace id adopted from (or minted for) the request, and the
// time it spent queued for admission. run writes admissionWait before
// the handler returns, so instrument's read after next() never races.
type reqState struct {
	traceID       string
	admissionWait time.Duration
}

type reqStateKey struct{}

// stateFrom returns the request's observability state, or nil outside
// the instrument middleware (direct handler tests).
func stateFrom(ctx context.Context) *reqState {
	st, _ := ctx.Value(reqStateKey{}).(*reqState)
	return st
}

// traceIDFor adopts the trace-id from an incoming W3C traceparent
// header, or mints a fresh one.
func traceIDFor(r *http.Request) string {
	if id := trace.ParseTraceparent(r.Header.Get("traceparent")); id != "" {
		return id
	}
	return trace.NewID()
}

// instrument is the observability middleware: it resolves the request's
// trace id (honoring an incoming traceparent), echoes it in the response
// headers, records per-route counts and latency, tracks the handler in
// the drain group, and emits one structured summary line per request.
func (s *Server) instrument(route string, next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.wg.Add(1)
		defer s.wg.Done()
		t0 := time.Now()
		st := &reqState{traceID: traceIDFor(r)}
		r = r.WithContext(context.WithValue(r.Context(), reqStateKey{}, st))
		w.Header().Set("X-Trace-Id", st.traceID)
		w.Header().Set("Traceparent", trace.Traceparent(st.traceID))
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next(sw, r)
		d := time.Since(t0)
		s.met.observeRequest(route, sw.code, d)
		s.cfg.Logger.Info("request",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.code),
			slog.Duration("dur", d),
			slog.String("trace_id", st.traceID),
			slog.Duration("admission_wait", st.admissionWait))
	}
}

// gated applies the request deadline and body cap, and fails fast
// during shutdown. It is the gate every store-touching route passes;
// admission itself happens in run, after the (cheap) body decode.
func (s *Server) gated(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.closed.Load() {
			s.met.addShutdownDrop()
			writeError(w, http.StatusServiceUnavailable, "server is shutting down")
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.timeoutFor(r))
		defer cancel()
		r = r.WithContext(ctx)
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		next(w, r)
	}
}

// timeoutFor derives the request deadline: the configured default,
// optionally shortened by a timeout_ms query parameter or X-Timeout-Ms
// header.
func (s *Server) timeoutFor(r *http.Request) time.Duration {
	d := s.cfg.RequestTimeout
	raw := r.URL.Query().Get("timeout_ms")
	if raw == "" {
		raw = r.Header.Get("X-Timeout-Ms")
	}
	if raw != "" {
		var ms int64
		if _, err := fmt.Sscanf(raw, "%d", &ms); err == nil && ms > 0 {
			if t := time.Duration(ms) * time.Millisecond; t < d {
				d = t
			}
		}
	}
	return d
}

// run admits the request, executes fn on a worker goroutine, and waits
// for it or the request deadline, whichever comes first. The admission
// slot and the drain group follow the worker, not the handler: a query
// the client gave up on still occupies a slot until it finishes, so
// MaxInFlight truly bounds executing work, and Close waits for it
// before declaring the store quiesced. fn must not touch the
// ResponseWriter.
func (s *Server) run(w http.ResponseWriter, r *http.Request, fn func() (any, int, error)) {
	admT := time.Now()
	err := s.adm.Acquire(r.Context())
	if st := stateFrom(r.Context()); st != nil {
		st.admissionWait = time.Since(admT)
	}
	switch {
	case err == nil:
		s.met.addAdmitted()
	case errors.Is(err, ErrSaturated):
		s.met.addRejected()
		// One journal entry per saturation episode, not per rejected
		// request: a new episode starts after 5s without rejections.
		now := time.Now().UnixNano()
		if last := s.lastSaturated.Swap(now); now-last > int64(5*time.Second) {
			s.events.Record("admission-saturated",
				fmt.Sprintf("in_flight=%d queued=%d", s.adm.InFlight(), s.adm.Queued()))
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(s.cfg.RetryAfter.Seconds()+0.5)))
		writeError(w, http.StatusTooManyRequests, "server saturated, retry later")
		return
	case errors.Is(err, ErrShuttingDown):
		s.met.addShutdownDrop()
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	default: // context expired while queued for admission
		writeError(w, http.StatusGatewayTimeout, "deadline exceeded waiting for admission")
		return
	}
	type outcome struct {
		body any
		code int
		err  error
	}
	ch := make(chan outcome, 1)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer s.adm.Release()
		defer func() {
			if rec := recover(); rec != nil {
				s.met.addPanic()
				s.cfg.Logger.Error("panic in request worker",
					slog.String("method", r.Method),
					slog.String("path", r.URL.Path),
					slog.Any("panic", rec),
					slog.String("stack", string(debug.Stack())))
				ch <- outcome{nil, http.StatusInternalServerError, fmt.Errorf("internal error: %v", rec)}
			}
		}()
		body, code, err := fn()
		ch <- outcome{body, code, err}
	}()

	select {
	case out := <-ch:
		if out.err != nil {
			writeError(w, out.code, out.err.Error())
			return
		}
		writeJSON(w, out.code, out.body)
	case <-r.Context().Done():
		writeError(w, http.StatusGatewayTimeout, "deadline exceeded")
	}
}

// statusWriter captures the response code for metrics.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (sw *statusWriter) WriteHeader(code int) {
	if !sw.wrote {
		sw.code = code
		sw.wrote = true
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	sw.wrote = true
	return sw.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so chunked streams (the /wal
// endpoint) push frames to the client instead of sitting in the buffer.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg, Status: code})
}

func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if body == nil {
		return
	}
	enc := json.NewEncoder(w)
	_ = enc.Encode(body)
}

// statusFor maps store and session errors onto HTTP codes: unparsable
// or untranslatable Gremlin is the client's fault (400, with the parse
// position in the message), missing elements are 404, duplicate ids
// 409, dead sessions 410, and anything else is ours (500).
func statusFor(err error) int {
	switch {
	case errors.Is(err, blueprints.ErrNotFound), errors.Is(err, ErrNoSession):
		return http.StatusNotFound
	case errors.Is(err, blueprints.ErrExists):
		return http.StatusConflict
	case errors.Is(err, ErrSessionGone), errors.Is(err, core.ErrSnapshotClosed):
		return http.StatusGone
	case errors.Is(err, ErrTooManySessions):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	case errors.Is(err, engine.ErrUnknownColumn):
		// A translated query referencing a nonexistent column (e.g. a
		// bare identifier in a has() step) is the query's fault.
		return http.StatusBadRequest
	}
	msg := err.Error()
	if strings.HasPrefix(msg, "gremlin:") || strings.HasPrefix(msg, "translate:") ||
		strings.HasPrefix(msg, "core: vertex ids") || strings.HasPrefix(msg, "core: edge ids") ||
		strings.HasPrefix(msg, "core: checkpoint: store is not durable") ||
		strings.HasPrefix(msg, "core: snapshot export") ||
		strings.HasPrefix(msg, "core: batch op") {
		// Batch errors not already mapped by errors.Is above are the
		// request's fault: invalid ids, unparsable docs, unbatchable ops.
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}
