package server

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sqlgraph/internal/blueprints"
	"sqlgraph/internal/core"
)

var update = flag.Bool("update", false, "rewrite golden files")

// figure2a builds the paper's Figure 2a sample graph.
func figure2a(t testing.TB) *blueprints.MemGraph {
	t.Helper()
	g := blueprints.NewMemGraph()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddVertex(1, map[string]any{"name": "marko", "age": 29}))
	must(g.AddVertex(2, map[string]any{"name": "vadas", "age": 27}))
	must(g.AddVertex(3, map[string]any{"name": "lop", "lang": "java"}))
	must(g.AddVertex(4, map[string]any{"name": "josh", "age": 32}))
	must(g.AddEdge(7, 1, 2, "knows", map[string]any{"weight": 0.5}))
	must(g.AddEdge(8, 1, 4, "knows", map[string]any{"weight": 1.0}))
	must(g.AddEdge(9, 1, 3, "created", map[string]any{"weight": 0.4}))
	must(g.AddEdge(10, 4, 2, "likes", map[string]any{"weight": 0.2}))
	must(g.AddEdge(11, 4, 3, "created", map[string]any{"weight": 0.8}))
	return g
}

// testEnv is one live server over the Figure 2a graph.
type testEnv struct {
	store *core.Store
	srv   *Server
	ts    *httptest.Server
}

func newTestEnv(t testing.TB, cfg Config) *testEnv {
	t.Helper()
	store, err := core.Load(figure2a(t), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ErrorLog == nil {
		cfg.ErrorLog = log.New(io.Discard, "", 0) // keep panic-path tests quiet
	}
	srv := New(store, cfg)
	ts := httptest.NewServer(srv.Handler())
	env := &testEnv{store: store, srv: srv, ts: ts}
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Close(ctx); err != nil {
			t.Errorf("server close: %v", err)
		}
		if pins := store.PinnedSnapshots(); pins != 0 {
			t.Errorf("%d snapshot pin(s) leaked after shutdown", pins)
		}
	})
	return env
}

// doJSON performs one request and returns the status and raw body.
func (e *testEnv) doJSON(t testing.TB, method, path string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		switch b := body.(type) {
		case string:
			rd = strings.NewReader(b)
		default:
			raw, err := json.Marshal(body)
			if err != nil {
				t.Fatal(err)
			}
			rd = bytes.NewReader(raw)
		}
	}
	req, err := http.NewRequest(method, e.ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := e.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// goldenTraceID pins the trace id in golden responses: the golden
// queries send a traceparent carrying it, so the server adopts it
// instead of minting a random one and the bodies stay byte-stable.
const goldenTraceID = "0af7651916cd43dd8448eb211c80319c"

// doJSONTraced is doJSON with a fixed W3C traceparent attached.
func (e *testEnv) doJSONTraced(t testing.TB, method, path string, body any) (int, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(method, e.ts.URL+path, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", "00-"+goldenTraceID+"-b7ad6b7169203331-01")
	resp, err := e.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func decodeInto[T any](t testing.TB, raw []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("unmarshal %q: %v", raw, err)
	}
	return v
}

func TestHealthz(t *testing.T) {
	env := newTestEnv(t, Config{})
	code, body := env.doJSON(t, "GET", "/healthz", nil)
	if code != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz: %d %s", code, body)
	}
}

// TestGoldenQueries locks the wire format: the Figure 2a demo queries
// must produce byte-for-byte identical JSON responses, golden files
// committed under testdata/golden. Regenerate with -update.
func TestGoldenQueries(t *testing.T) {
	env := newTestEnv(t, Config{})
	queries := []struct {
		name    string
		gremlin string
	}{
		{"marko_knows_names", "g.V.has('name', 'marko').out('knows').name"},
		{"age_filter_count", "g.V.filter{it.age > 27}.count()"},
		{"heavy_edges_count", "g.E.has('weight', T.gt, 0.5).count()"},
		{"knows_created_path", "g.V(1).out('knows').out('created').path"},
		{"both_dedup_count", "g.V.both.dedup().count()"},
		{"created_langs", "g.V.out('created').lang.dedup()"},
	}
	for _, q := range queries {
		t.Run(q.name, func(t *testing.T) {
			code, body := env.doJSONTraced(t, "POST", "/query", map[string]any{"gremlin": q.gremlin})
			if code != http.StatusOK {
				t.Fatalf("query %q: %d %s", q.gremlin, code, body)
			}
			golden := filepath.Join("testdata", "golden", q.name+".json")
			if *update {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, body, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if !bytes.Equal(body, want) {
				t.Fatalf("response drifted from golden %s:\n got: %s\nwant: %s", golden, body, want)
			}
		})
	}
}

func TestQueryParseErrorIs400WithPosition(t *testing.T) {
	env := newTestEnv(t, Config{})
	code, body := env.doJSON(t, "POST", "/query", map[string]any{"gremlin": "g.V.has('name',"})
	if code != http.StatusBadRequest {
		t.Fatalf("want 400, got %d: %s", code, body)
	}
	if !strings.Contains(string(body), "position") {
		t.Fatalf("parse error should report a position: %s", body)
	}
}

func TestQueryUnsupportedTranslationIs400(t *testing.T) {
	env := newTestEnv(t, Config{})
	code, body := env.doJSON(t, "POST", "/query", map[string]any{"gremlin": "g.V.dedup().path"})
	if code != http.StatusBadRequest {
		t.Fatalf("want 400, got %d: %s", code, body)
	}
}

func TestQueryMalformedJSONIs400(t *testing.T) {
	env := newTestEnv(t, Config{})
	for _, body := range []string{"", "{", `{"gremlin": 7}`, `{"nope": "field"}`, `[1,2]`} {
		code, raw := env.doJSON(t, "POST", "/query", body)
		if code != http.StatusBadRequest {
			t.Fatalf("body %q: want 400, got %d: %s", body, code, raw)
		}
	}
}

func TestOversizedBodyIs413(t *testing.T) {
	env := newTestEnv(t, Config{MaxBodyBytes: 256})
	big := fmt.Sprintf(`{"gremlin": "g.V.has('name', '%s').count()"}`, strings.Repeat("x", 4096))
	code, body := env.doJSON(t, "POST", "/query", big)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("want 413, got %d: %s", code, body)
	}
}

func TestTranslateEndpoint(t *testing.T) {
	env := newTestEnv(t, Config{})
	code, body := env.doJSON(t, "POST", "/translate", map[string]any{"gremlin": "g.V.has('name', 'marko').out('knows').name"})
	if code != http.StatusOK {
		t.Fatalf("translate: %d %s", code, body)
	}
	resp := decodeInto[translateResponse](t, body)
	if !strings.Contains(resp.SQL, "SELECT") || resp.ElemType != "value" {
		t.Fatalf("unexpected translation: %+v", resp)
	}
	// Untranslatable input is the client's fault.
	code, _ = env.doJSON(t, "POST", "/translate", map[string]any{"gremlin": "g.nope"})
	if code != http.StatusBadRequest {
		t.Fatalf("want 400 for untranslatable, got %d", code)
	}
}

// TestSessionLifecycle covers create → isolated reads → close → 410.
func TestSessionLifecycle(t *testing.T) {
	env := newTestEnv(t, Config{})
	code, body := env.doJSON(t, "POST", "/sessions", nil)
	if code != http.StatusCreated {
		t.Fatalf("session create: %d %s", code, body)
	}
	sess := decodeInto[sessionResponse](t, body)

	// A write lands after the session pin: the session must not see it.
	code, body = env.doJSON(t, "POST", "/vertex", vertexBody{ID: 99, Attrs: map[string]any{"name": "newcomer"}})
	if code != http.StatusCreated {
		t.Fatalf("add vertex: %d %s", code, body)
	}
	code, body = env.doJSON(t, "POST", "/query", map[string]any{"gremlin": "g.V.count", "session": sess.Session})
	if code != http.StatusOK {
		t.Fatalf("session query: %d %s", code, body)
	}
	got := decodeInto[queryResponse](t, body)
	if len(got.Values) != 1 || got.Values[0] != float64(4) {
		t.Fatalf("session should see the pinned version (4 vertices), got %v", got.Values)
	}
	if got.Version != sess.Version {
		t.Fatalf("session query ran at version %d, session pinned %d", got.Version, sess.Version)
	}
	// The live path sees the write.
	code, body = env.doJSON(t, "POST", "/query", map[string]any{"gremlin": "g.V.count"})
	if code != http.StatusOK {
		t.Fatal("live query failed")
	}
	if live := decodeInto[queryResponse](t, body); live.Values[0] != float64(5) {
		t.Fatalf("live query should see 5 vertices, got %v", live.Values)
	}
	// Point reads honor ?session=.
	code, body = env.doJSON(t, "GET", "/vertex/99?session="+sess.Session, nil)
	if code != http.StatusNotFound {
		t.Fatalf("vertex 99 must be invisible to the session: %d %s", code, body)
	}
	// GET /sessions/{id} renews and reports.
	code, body = env.doJSON(t, "GET", "/sessions/"+sess.Session, nil)
	if code != http.StatusOK {
		t.Fatalf("session get: %d %s", code, body)
	}

	// Close, then everything is 410.
	code, _ = env.doJSON(t, "DELETE", "/sessions/"+sess.Session, nil)
	if code != http.StatusOK {
		t.Fatalf("session delete: %d", code)
	}
	for _, probe := range []func() (int, []byte){
		func() (int, []byte) {
			return env.doJSON(t, "POST", "/query", map[string]any{"gremlin": "g.V.count", "session": sess.Session})
		},
		func() (int, []byte) { return env.doJSON(t, "GET", "/vertex/1?session="+sess.Session, nil) },
		func() (int, []byte) { return env.doJSON(t, "GET", "/sessions/"+sess.Session, nil) },
	} {
		if code, body := probe(); code != http.StatusGone {
			t.Fatalf("closed session: want 410, got %d %s", code, body)
		}
	}
	// Unknown sessions are 404, not 410.
	if code, _ := env.doJSON(t, "GET", "/sessions/ffffffffffffffffffffffffffffffff", nil); code != http.StatusNotFound {
		t.Fatalf("unknown session: want 404, got %d", code)
	}
	if pins := env.store.PinnedSnapshots(); pins != 0 {
		t.Fatalf("pins should be released after session close, have %d", pins)
	}
}

// TestSessionExpiry covers the TTL lease: an abandoned session expires,
// unpins, and answers 410 afterwards.
func TestSessionExpiry(t *testing.T) {
	env := newTestEnv(t, Config{SessionTTL: 50 * time.Millisecond})
	code, body := env.doJSON(t, "POST", "/sessions", nil)
	if code != http.StatusCreated {
		t.Fatalf("session create: %d %s", code, body)
	}
	sess := decodeInto[sessionResponse](t, body)
	deadline := time.Now().Add(5 * time.Second)
	for env.store.PinnedSnapshots() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("expired session never unpinned")
		}
		time.Sleep(10 * time.Millisecond)
	}
	code, body = env.doJSON(t, "POST", "/query", map[string]any{"gremlin": "g.V.count", "session": sess.Session})
	if code != http.StatusGone {
		t.Fatalf("expired session: want 410, got %d %s", code, body)
	}
}

// TestDeadline covers 504: a mutation blocked behind a held table lock
// exceeds its deadline; the abandoned worker finishes after the lock is
// released and the server still drains to zero pins (the cleanup hook
// asserts that).
func TestDeadline(t *testing.T) {
	env := newTestEnv(t, Config{})
	tx, err := env.store.Catalog().Begin([]string{core.TableVA}, nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		code, body := env.doJSON(t, "POST", "/vertex?timeout_ms=100", vertexBody{ID: 50})
		if code != http.StatusGatewayTimeout {
			t.Errorf("want 504, got %d %s", code, body)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("blocked mutation never timed out")
	}
	tx.Rollback()
	// The abandoned worker should complete and release its slot.
	deadline := time.Now().Add(5 * time.Second)
	for env.srv.InFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned worker never released its admission slot")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestPointReadsAndMutations(t *testing.T) {
	env := newTestEnv(t, Config{})

	code, body := env.doJSON(t, "GET", "/vertex/1", nil)
	if code != http.StatusOK {
		t.Fatalf("vertex get: %d %s", code, body)
	}
	v := decodeInto[vertexBody](t, body)
	if v.Attrs["name"] != "marko" {
		t.Fatalf("vertex 1: %+v", v)
	}
	if code, _ = env.doJSON(t, "GET", "/vertex/999", nil); code != http.StatusNotFound {
		t.Fatalf("missing vertex: want 404, got %d", code)
	}
	if code, _ = env.doJSON(t, "GET", "/vertex/banana", nil); code != http.StatusBadRequest {
		t.Fatalf("bad id: want 400, got %d", code)
	}

	code, body = env.doJSON(t, "GET", "/edge/9", nil)
	if code != http.StatusOK {
		t.Fatalf("edge get: %d %s", code, body)
	}
	e := decodeInto[edgeBody](t, body)
	if e.From != 1 || e.To != 3 || e.Label != "created" || e.Attrs["weight"] != 0.4 {
		t.Fatalf("edge 9: %+v", e)
	}
	if code, _ = env.doJSON(t, "GET", "/edge/999", nil); code != http.StatusNotFound {
		t.Fatalf("missing edge: want 404, got %d", code)
	}

	code, body = env.doJSON(t, "GET", "/vertex/1/out?label=knows", nil)
	if code != http.StatusOK {
		t.Fatalf("out edges: %d %s", code, body)
	}
	if el := decodeInto[edgeList](t, body); el.Count != 2 {
		t.Fatalf("vertex 1 -knows->: want 2 edges, got %+v", el)
	}
	code, body = env.doJSON(t, "GET", "/vertex/3/in", nil)
	if code != http.StatusOK || decodeInto[edgeList](t, body).Count != 2 {
		t.Fatalf("in edges of 3: %d %s", code, body)
	}

	// Mutations: insert, duplicate, patch, delete.
	code, body = env.doJSON(t, "POST", "/vertex", vertexBody{ID: 42, Attrs: map[string]any{"name": "new"}})
	if code != http.StatusCreated {
		t.Fatalf("add vertex: %d %s", code, body)
	}
	if code, _ = env.doJSON(t, "POST", "/vertex", vertexBody{ID: 42}); code != http.StatusConflict {
		t.Fatalf("duplicate vertex: want 409, got %d", code)
	}
	if code, _ = env.doJSON(t, "POST", "/vertex", `{"id": -5}`); code != http.StatusBadRequest {
		t.Fatalf("negative id: want 400, got %d", code)
	}
	code, body = env.doJSON(t, "POST", "/edge", edgeBody{ID: 40, From: 42, To: 1, Label: "knows"})
	if code != http.StatusCreated {
		t.Fatalf("add edge: %d %s", code, body)
	}
	if code, _ = env.doJSON(t, "POST", "/edge", edgeBody{ID: 41, From: 42, To: 999, Label: "knows"}); code != http.StatusNotFound {
		t.Fatalf("edge to missing vertex: want 404, got %d", code)
	}
	code, body = env.doJSON(t, "PATCH", "/vertex/42/attrs", attrPatch{Set: map[string]any{"age": 1, "name": "renamed"}, Remove: []string{"nope"}})
	if code != http.StatusOK {
		t.Fatalf("attr patch: %d %s", code, body)
	}
	code, body = env.doJSON(t, "GET", "/vertex/42", nil)
	if v := decodeInto[vertexBody](t, body); v.Attrs["name"] != "renamed" || v.Attrs["age"] != float64(1) {
		t.Fatalf("patched vertex: %+v", v)
	}
	code, body = env.doJSON(t, "PATCH", "/edge/40/attrs", attrPatch{Set: map[string]any{"weight": 0.9}})
	if code != http.StatusOK {
		t.Fatalf("edge attr patch: %d %s", code, body)
	}
	if code, _ = env.doJSON(t, "DELETE", "/edge/40", nil); code != http.StatusOK {
		t.Fatalf("edge delete: %d", code)
	}
	if code, _ = env.doJSON(t, "DELETE", "/vertex/42", nil); code != http.StatusOK {
		t.Fatalf("vertex delete: %d", code)
	}
	if code, _ = env.doJSON(t, "DELETE", "/vertex/42", nil); code != http.StatusNotFound {
		t.Fatalf("double delete: want 404, got %d", code)
	}

	// The graph still checks clean after the churn.
	code, body = env.doJSON(t, "GET", "/check", nil)
	if code != http.StatusOK || !strings.Contains(string(body), `"healthy":true`) {
		t.Fatalf("check: %d %s", code, body)
	}
}

func TestStatsAndAdminEndpoints(t *testing.T) {
	env := newTestEnv(t, Config{})
	code, body := env.doJSON(t, "GET", "/stats", nil)
	if code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, body)
	}
	var stats map[string]any
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats["vertices"] != float64(4) || stats["edges"] != float64(5) {
		t.Fatalf("stats counts: %v", stats)
	}

	// Vacuum after a delete reclaims rows.
	if code, _ := env.doJSON(t, "DELETE", "/vertex/2", nil); code != http.StatusOK {
		t.Fatal("delete failed")
	}
	code, body = env.doJSON(t, "POST", "/admin/vacuum", nil)
	if code != http.StatusOK {
		t.Fatalf("vacuum: %d %s", code, body)
	}
	// Checkpoint on an in-memory store is a client error, not a crash.
	code, body = env.doJSON(t, "POST", "/admin/checkpoint", nil)
	if code != http.StatusBadRequest {
		t.Fatalf("checkpoint on memory store: want 400, got %d %s", code, body)
	}
}

func TestCheckpointOnDurableStore(t *testing.T) {
	dir := t.TempDir()
	store, err := core.Load(figure2a(t), core.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := New(store, Config{ErrorLog: log.New(io.Discard, "", 0)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close(context.Background())

	resp, err := http.Post(ts.URL+"/admin/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: %d", resp.StatusCode)
	}
}

func TestMetricsExposition(t *testing.T) {
	env := newTestEnv(t, Config{})
	env.doJSON(t, "POST", "/query", map[string]any{"gremlin": "g.V.has('name', 'marko').out('knows').name"})
	env.doJSON(t, "POST", "/query", map[string]any{"gremlin": "not gremlin ("})
	code, body := env.doJSON(t, "GET", "/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	text := string(body)
	for _, want := range []string{
		`sqlgraphd_requests_total{route="/query",code="200"} 1`,
		`sqlgraphd_requests_total{route="/query",code="400"} 1`,
		"sqlgraphd_request_seconds_bucket",
		"sqlgraphd_queries_total 2",
		"sqlgraphd_query_errors_total 1",
		"sqlgraphd_snapshot_pins 0",
		"sqlgraphd_exec_scans_total",
		"sqlgraphd_admission_admitted_total",
		// Every series carries HELP and TYPE lines.
		"# HELP sqlgraphd_requests_total ",
		"# TYPE sqlgraphd_requests_total counter",
		"# HELP sqlgraphd_request_seconds ",
		"# TYPE sqlgraphd_request_seconds histogram",
		// Subsystems instrumented through the registry.
		// Both queries miss the prepared cache (the unparsable one counts
		// its miss before the parse fails).
		"sqlgraphd_prepared_cache_misses_total 2",
		"sqlgraphd_plan_cache_hits_total",
		"sqlgraphd_plan_cache_misses_total",
		"sqlgraphd_plan_cache_invalidations_total",
		"sqlgraphd_tail_fallback_queries_total",
		"sqlgraphd_mvcc_oldest_pin_age_seconds",
		"sqlgraphd_mvcc_gc_backlog_records",
		"sqlgraphd_mvcc_gc_reclaimed_rows_total",
		"sqlgraphd_wal_flush_seconds_bucket",
		"sqlgraphd_wal_buffered_records",
		"sqlgraphd_wal_streams_active",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", text)
	}
}

// TestPanicRecovery routes a panicking handler through the recovery
// middleware: the response is a 500 and the panic counter moves.
func TestPanicRecovery(t *testing.T) {
	env := newTestEnv(t, Config{})
	h := env.srv.recovered(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/panic", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("want 500, got %d", rec.Code)
	}
	if panics := env.srv.met.panics.Value(); panics != 1 {
		t.Fatalf("panic counter: %d", panics)
	}
}

// TestWorkerPanicIs500 panics inside the worker goroutine (the path the
// outer middleware cannot see).
func TestWorkerPanicIs500(t *testing.T) {
	env := newTestEnv(t, Config{})
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/panic", nil)
	env.srv.run(rec, req, func() (any, int, error) { panic("worker boom") })
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("want 500, got %d: %s", rec.Code, rec.Body)
	}
	if env.srv.InFlight() != 0 {
		t.Fatal("panicked worker leaked its admission slot")
	}
}

func TestShutdownRejectsNewRequests(t *testing.T) {
	store, err := core.Load(figure2a(t), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(store, Config{ErrorLog: log.New(io.Discard, "", 0)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if err := srv.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(`{"gremlin":"g.V.count"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown request: want 503, got %d", resp.StatusCode)
	}
	if pins := store.PinnedSnapshots(); pins != 0 {
		t.Fatalf("pins after shutdown: %d", pins)
	}
}
