package server

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"sync"
	"time"

	"sqlgraph/internal/core"
)

// Session errors. ErrSessionGone maps to 410 (the lease expired or the
// client closed it), ErrNoSession to 404, ErrTooManySessions to 429.
var (
	ErrSessionGone     = errors.New("server: session closed or expired")
	ErrNoSession       = errors.New("server: no such session")
	ErrTooManySessions = errors.New("server: session limit reached")
)

// session is one client-held snapshot lease. A session pins the store
// version it was created at; every use extends the lease by the table's
// TTL. refs counts in-progress requests so the janitor never closes a
// snapshot out from under a running query: expiry marks the session
// gone (new requests get 410) and the last active request unpins.
type session struct {
	id      string
	snap    *core.Snap
	expires time.Time // guarded by sessions.mu
	refs    int       // guarded by sessions.mu
	gone    bool      // guarded by sessions.mu
}

// sessions is the lease table. Expired and explicitly-closed sessions
// linger as tombstones (gone=true, snapshot unpinned) for one grace
// period so clients get a truthful 410 rather than 404; the janitor
// removes tombstones after tombstoneFor.
type sessions struct {
	mu    sync.Mutex
	m     map[string]*session
	ttl   time.Duration
	max   int
	stop  chan struct{}
	done  chan struct{}
	nowFn func() time.Time // test hook
}

// tombstoneFor is how long a gone session stays answerable with 410.
const tombstoneFor = 10 * time.Minute

func newSessions(ttl time.Duration, max int) *sessions {
	st := &sessions{
		m:     map[string]*session{},
		ttl:   ttl,
		max:   max,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		nowFn: time.Now,
	}
	go st.janitor()
	return st
}

// Create pins a fresh snapshot and returns its lease.
func (st *sessions) Create(store *core.Store) (*session, error) {
	id := newSessionID()
	st.mu.Lock()
	live := 0
	for _, s := range st.m {
		if !s.gone {
			live++
		}
	}
	if live >= st.max {
		st.mu.Unlock()
		return nil, ErrTooManySessions
	}
	s := &session{id: id, expires: st.nowFn().Add(st.ttl)}
	st.m[id] = s
	st.mu.Unlock()

	// Pin outside the table lock; the entry is not handed out until snap
	// is set here, and Acquire treats a nil snap as not-yet-ready.
	snap := store.Snapshot()
	st.mu.Lock()
	if s.gone {
		// Closed (shutdown) while we were pinning.
		st.mu.Unlock()
		snap.Close()
		return nil, ErrShuttingDown
	}
	s.snap = snap
	st.mu.Unlock()
	return s, nil
}

// Acquire looks up a session for one request, extends its lease, and
// takes a reference. The caller must call Done with the session when
// the request finishes.
func (st *sessions) Acquire(id string) (*session, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.m[id]
	if !ok {
		return nil, ErrNoSession
	}
	if s.gone || s.snap == nil || st.nowFn().After(s.expires) {
		return nil, ErrSessionGone
	}
	s.refs++
	s.expires = st.nowFn().Add(st.ttl)
	return s, nil
}

// Done releases one reference taken by Acquire.
func (st *sessions) Done(s *session) {
	st.mu.Lock()
	s.refs--
	unpin := s.gone && s.refs == 0 && s.snap != nil
	st.mu.Unlock()
	if unpin {
		s.snap.Close()
	}
}

// Close marks one session gone. Idempotent; unknown ids return
// ErrNoSession, already-gone ids ErrSessionGone.
func (st *sessions) Close(id string) error {
	st.mu.Lock()
	s, ok := st.m[id]
	if !ok {
		st.mu.Unlock()
		return ErrNoSession
	}
	err := st.markGoneLocked(s)
	st.mu.Unlock()
	return err
}

// markGoneLocked transitions a session to the tombstone state and
// unpins its snapshot once no request is using it.
func (st *sessions) markGoneLocked(s *session) error {
	if s.gone {
		return ErrSessionGone
	}
	s.gone = true
	s.expires = st.nowFn().Add(tombstoneFor)
	if s.refs == 0 && s.snap != nil {
		s.snap.Close()
	}
	return nil
}

// Open counts live (non-tombstone) sessions.
func (st *sessions) Open() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, s := range st.m {
		if !s.gone {
			n++
		}
	}
	return n
}

// sweep expires overdue leases and drops old tombstones.
func (st *sessions) sweep() {
	st.mu.Lock()
	now := st.nowFn()
	for id, s := range st.m {
		if s.gone {
			if now.After(s.expires) {
				delete(st.m, id)
			}
			continue
		}
		if now.After(s.expires) {
			st.markGoneLocked(s)
		}
	}
	st.mu.Unlock()
}

func (st *sessions) janitor() {
	defer close(st.done)
	period := st.ttl / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	if period > time.Second {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-st.stop:
			return
		case <-t.C:
			st.sweep()
		}
	}
}

// Shutdown stops the janitor and closes every session, unpinning all
// snapshots (in-use ones as their last request finishes).
func (st *sessions) Shutdown() {
	close(st.stop)
	<-st.done
	st.mu.Lock()
	for id, s := range st.m {
		if !s.gone {
			st.markGoneLocked(s)
		}
		delete(st.m, id)
	}
	st.mu.Unlock()
}

func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return hex.EncodeToString(b[:])
}
