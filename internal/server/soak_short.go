//go:build !slow

package server

import "time"

// soakDuration is the load window of the concurrent soak test. The
// default keeps `go test -race ./internal/server` fast; build with
// `-tags slow` for the full-length run.
const soakDuration = 1500 * time.Millisecond
