//go:build slow

package server

import "time"

// soakDuration under -tags slow: the full-length soak.
const soakDuration = 10 * time.Second
