package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sqlgraph/internal/core"
)

// TestServerSoak hammers a live durable server with concurrent HTTP
// readers (fresh-snapshot queries, session queries, point reads),
// mutating writers, session churn, and periodic Vacuum for a fixed
// window, then shuts down gracefully and asserts the three safety
// properties the serving layer promises:
//
//  1. zero 5xx responses under churn,
//  2. zero snapshot pins after drain, and
//  3. a clean core.Check on the final store.
//
// Run with -race (CI does); -tags slow lengthens the window.
func TestServerSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	dir := t.TempDir()
	store, err := core.Load(figure2a(t), core.Options{Dir: dir, SnapshotEvery: 512})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(store, Config{
		MaxInFlight: 32,
		MaxQueue:    64,
		SessionTTL:  150 * time.Millisecond, // force lease expiry under load
		ErrorLog:    log.New(io.Discard, "", 0),
	})
	ts := httptest.NewServer(srv.Handler())
	client := ts.Client()
	client.Timeout = 10 * time.Second

	var (
		requests  atomic.Int64
		server5xx atomic.Int64
		firstBad  sync.Once
		badBody   atomic.Value
	)
	do := func(method, path string, body string) (int, []byte) {
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, ts.URL+path, rd)
		if err != nil {
			t.Error(err)
			return 0, nil
		}
		resp, err := client.Do(req)
		if err != nil {
			// Transport errors can only come from shutdown races; the
			// clients stop before the server does, so report them.
			t.Errorf("%s %s: %v", method, path, err)
			return 0, nil
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		requests.Add(1)
		if resp.StatusCode >= 500 {
			server5xx.Add(1)
			firstBad.Do(func() { badBody.Store(fmt.Sprintf("%s %s -> %d %s", method, path, resp.StatusCode, raw)) })
		}
		return resp.StatusCode, raw
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Readers: live queries, point reads, and an explain now and then.
	queries := []string{
		`{"gremlin":"g.V.count"}`,
		`{"gremlin":"g.V.has('name', 'marko').out('knows').name"}`,
		`{"gremlin":"g.E.count"}`,
		`{"gremlin":"g.V.both.dedup().count()","explain":true}`,
		`{"gremlin":"g.V(1).out('knows').out('created').path"}`,
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := r; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 3 {
				case 0:
					do("POST", "/query", queries[i%len(queries)])
				case 1:
					do("GET", fmt.Sprintf("/vertex/%d", 1+i%4), "")
				case 2:
					do("GET", fmt.Sprintf("/vertex/%d/out", 1+i%4), "")
				}
			}
		}(r)
	}

	// Session churn: create a session, read through it a few times
	// (some after the short TTL has expired it — 410s are expected and
	// fine), sometimes close it explicitly, sometimes abandon it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			code, raw := do("POST", "/sessions", "")
			if code != http.StatusCreated {
				continue // e.g. 429 under load
			}
			var sess sessionResponse
			if err := json.Unmarshal(raw, &sess); err != nil {
				t.Errorf("session body: %v", err)
				continue
			}
			for j := 0; j < 4; j++ {
				do("POST", "/query", fmt.Sprintf(`{"gremlin":"g.V.count","session":"%s"}`, sess.Session))
				do("GET", "/vertex/1?session="+sess.Session, "")
				if j == 2 {
					time.Sleep(160 * time.Millisecond) // outlive the lease sometimes
				}
			}
			if i%2 == 0 {
				do("DELETE", "/sessions/"+sess.Session, "")
			}
		}
	}()

	// Writers: two goroutines churning disjoint vertex ranges with
	// edges into the stable Figure 2a core.
	for wid := 0; wid < 2; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			base := int64(1000 + wid*1000)
			for i := int64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := base + i%64
				eid := int64(1<<40) + id
				code, _ := do("POST", "/vertex", fmt.Sprintf(`{"id":%d,"attrs":{"soak":%d}}`, id, i))
				if code == http.StatusCreated {
					do("POST", "/edge", fmt.Sprintf(`{"id":%d,"from":%d,"to":1,"label":"soak"}`, eid, id))
					do("PATCH", fmt.Sprintf("/vertex/%d/attrs", id), `{"set":{"touched":true}}`)
				} else {
					do("DELETE", fmt.Sprintf("/vertex/%d", id), "") // drops the soak edge too
				}
			}
		}(wid)
	}

	// Vacuum + checkpoint ticker.
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(200 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				do("POST", "/admin/vacuum", "")
				do("GET", "/metrics", "")
			}
		}
	}()

	time.Sleep(soakDuration)
	close(stop)
	wg.Wait()

	// Graceful shutdown: drain, then verify the safety properties.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts.Close()

	t.Logf("soak: %d requests in %v", requests.Load(), soakDuration)
	if n := server5xx.Load(); n != 0 {
		t.Fatalf("%d 5xx responses during soak; first: %v", n, badBody.Load())
	}
	if pins := store.PinnedSnapshots(); pins != 0 {
		t.Fatalf("%d snapshot pin(s) leaked after drain", pins)
	}
	if vs := core.Check(store); len(vs) != 0 {
		for _, v := range vs {
			t.Error(v.String())
		}
		t.Fatalf("store failed fsck after soak: %d violation(s)", len(vs))
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	// And the durable directory recovers clean.
	if vs, err := core.Fsck(dir); err != nil || len(vs) != 0 {
		t.Fatalf("offline fsck after soak: err=%v violations=%v", err, vs)
	}
}
