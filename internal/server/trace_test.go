package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"sqlgraph/internal/core"
	"sqlgraph/internal/trace"
)

// TestExplainAnalyzeResponse checks that /query with explain set returns
// a full EXPLAIN ANALYZE: the translated SQL, the timed span tree as
// JSON, its text rendering, and the legacy stats string.
func TestExplainAnalyzeResponse(t *testing.T) {
	env := newTestEnv(t, Config{})
	code, body := env.doJSON(t, "POST", "/query", map[string]any{
		"gremlin": "g.V.has('name', 'marko').out('knows').name",
		"explain": true,
	})
	if code != http.StatusOK {
		t.Fatalf("query: %d %s", code, body)
	}
	resp := decodeInto[queryResponse](t, body)
	if resp.TraceID == "" {
		t.Fatal("explain response missing trace_id")
	}
	if !strings.Contains(resp.SQL, "SELECT") {
		t.Fatalf("explain response SQL: %q", resp.SQL)
	}
	if resp.Plan == nil || resp.Plan.Root == nil {
		t.Fatal("explain response missing plan tree")
	}
	if resp.Stats == "" || resp.PlanText == "" {
		t.Fatalf("explain response missing stats/plan_text: %+v", resp)
	}

	// The root's children are the stages; execute must carry per-operator
	// children, each with a wall time and row counts.
	var exec *trace.Span
	for _, sp := range resp.Plan.Root.Children {
		if sp.Name == "execute" {
			exec = sp
		}
	}
	if exec == nil {
		t.Fatalf("plan tree has no execute span: %s", body)
	}
	if exec.DurNs <= 0 {
		t.Fatalf("execute span has no wall time: %+v", exec)
	}
	if len(exec.Children) == 0 {
		t.Fatal("execute span has no operator children")
	}
	sawScan := false
	for _, op := range exec.Children {
		if op.DurNs < 0 || op.StartNs < 0 {
			t.Fatalf("operator %s has negative timing: %+v", op.Name, op)
		}
		if op.Name == "scan" {
			sawScan = true
			if op.RowsIn == 0 {
				t.Fatalf("scan operator reports no input rows: %+v", op)
			}
		}
	}
	if !sawScan {
		t.Fatalf("no scan operator in plan tree: %s", body)
	}
}

// TestDebugQueriesEndpoint is the acceptance path: run a query, then
// fetch its trace back by id from /debug/queries/{id}.
func TestDebugQueriesEndpoint(t *testing.T) {
	env := newTestEnv(t, Config{})
	code, body := env.doJSON(t, "POST", "/query", map[string]any{
		"gremlin": "g.V.has('name', 'marko').out('knows').name",
	})
	if code != http.StatusOK {
		t.Fatalf("query: %d %s", code, body)
	}
	id := decodeInto[queryResponse](t, body).TraceID
	if id == "" {
		t.Fatal("query response missing trace_id")
	}

	code, body = env.doJSON(t, "GET", "/debug/queries", nil)
	if code != http.StatusOK {
		t.Fatalf("debug list: %d %s", code, body)
	}
	list := decodeInto[debugQueriesResponse](t, body)
	found := false
	for _, tr := range list.Recent {
		if tr.ID == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("trace %s not retained in /debug/queries recent list", id)
	}

	code, body = env.doJSON(t, "GET", "/debug/queries/"+id, nil)
	if code != http.StatusOK {
		t.Fatalf("debug get: %d %s", code, body)
	}
	got := decodeInto[trace.Trace](t, body)
	if got.ID != id || got.Root == nil {
		t.Fatalf("retrieved trace mismatch: %+v", got)
	}

	code, _ = env.doJSON(t, "GET", "/debug/queries/"+strings.Repeat("0", 32), nil)
	if code != http.StatusNotFound {
		t.Fatalf("unknown trace id: want 404, got %d", code)
	}

	// Text form for humans.
	code, body = env.doJSON(t, "GET", "/debug/queries/"+id+"?format=text", nil)
	if code != http.StatusOK || !strings.Contains(string(body), "trace "+id) {
		t.Fatalf("debug text form: %d %s", code, body)
	}
}

// TestTraceparentPropagation covers the W3C header contract: a valid
// incoming traceparent is adopted and echoed, a malformed one is
// replaced with a freshly minted id.
func TestTraceparentPropagation(t *testing.T) {
	env := newTestEnv(t, Config{})
	const id = "4bf92f3577b34da6a3ce929d0e0e4736"

	req, err := http.NewRequest("GET", env.ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", "00-"+id+"-00f067aa0ba902b7-01")
	resp, err := env.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got != id {
		t.Fatalf("X-Trace-Id: want %s, got %s", id, got)
	}
	tp := resp.Header.Get("Traceparent")
	if ok, _ := regexp.MatchString("^00-"+id+"-[0-9a-f]{16}-01$", tp); !ok {
		t.Fatalf("response traceparent malformed: %q", tp)
	}

	// Malformed header: a fresh id is minted instead.
	req, _ = http.NewRequest("GET", env.ts.URL+"/healthz", nil)
	req.Header.Set("traceparent", "00-zzzz-bad-01")
	resp, err = env.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	got := resp.Header.Get("X-Trace-Id")
	if len(got) != 32 || got == id {
		t.Fatalf("malformed traceparent should mint a fresh 128-bit id, got %q", got)
	}
}

// TestPprofGating: the profiling endpoints exist only when opted in.
func TestPprofGating(t *testing.T) {
	on := newTestEnv(t, Config{EnablePprof: true})
	code, body := on.doJSON(t, "GET", "/debug/pprof/", nil)
	if code != http.StatusOK || !strings.Contains(string(body), "profile") {
		t.Fatalf("pprof enabled: %d", code)
	}

	off := newTestEnv(t, Config{})
	code, _ = off.doJSON(t, "GET", "/debug/pprof/", nil)
	if code != http.StatusNotFound {
		t.Fatalf("pprof disabled: want 404, got %d", code)
	}
}

// TestRequestLogLine drives one request synchronously through the
// handler and checks the structured summary line carries every field
// the issue asks for.
func TestRequestLogLine(t *testing.T) {
	store, err := core.Load(figure2a(t), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	srv := New(store, Config{Logger: slog.New(slog.NewJSONHandler(&buf, nil))})
	defer srv.Close(t.Context())

	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/query", strings.NewReader(`{"gremlin":"g.V.count()"}`))
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("query: %d %s", rec.Code, rec.Body)
	}

	line := strings.TrimSpace(buf.String())
	var entry map[string]any
	if err := json.Unmarshal([]byte(line), &entry); err != nil {
		t.Fatalf("log line is not JSON: %q: %v", line, err)
	}
	if entry["msg"] != "request" || entry["method"] != "POST" || entry["path"] != "/query" {
		t.Fatalf("log line fields: %q", line)
	}
	if entry["status"] != float64(http.StatusOK) {
		t.Fatalf("log line status: %q", line)
	}
	for _, key := range []string{"dur", "trace_id", "admission_wait"} {
		if _, ok := entry[key]; !ok {
			t.Fatalf("log line missing %q: %q", key, line)
		}
	}
	if id, _ := entry["trace_id"].(string); len(id) != 32 {
		t.Fatalf("log line trace_id: %q", line)
	}
}

// timingRE matches the rendered durations so the EXPLAIN ANALYZE golden
// is stable across machines.
var timingRE = regexp.MustCompile(`(time|total)=[^ \n]+`)

// TestExplainAnalyzeGoldenText locks the EXPLAIN ANALYZE text shape:
// stage and operator lines with rows, details, and (normalized) times.
func TestExplainAnalyzeGoldenText(t *testing.T) {
	env := newTestEnv(t, Config{})
	code, body := env.doJSONTraced(t, "POST", "/query", map[string]any{
		"gremlin": "g.V.has('name', 'marko').out('knows').name",
		"explain": true,
	})
	if code != http.StatusOK {
		t.Fatalf("query: %d %s", code, body)
	}
	resp := decodeInto[queryResponse](t, body)
	text := timingRE.ReplaceAllString(resp.PlanText, "$1=X")

	golden := filepath.Join("testdata", "golden", "explain_analyze.txt")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if text != string(want) {
		t.Fatalf("EXPLAIN ANALYZE text drifted:\n got: %q\nwant: %q", text, want)
	}
}
