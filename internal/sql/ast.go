package sql

import (
	"strings"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// Expr is any scalar expression node.
type Expr interface {
	expr()
	// SQL renders the expression back to SQL text (used for error messages
	// and to match expression indexes).
	SQL() string
}

// --- Statements ---

// SelectStmt is a full query: an optional WITH clause wrapping a set-
// operation tree of simple selects, plus ORDER BY / LIMIT.
type SelectStmt struct {
	With    []CTE
	Body    SelectBody
	OrderBy []OrderItem
	Limit   Expr // nil when absent
	Offset  Expr // nil when absent
}

func (*SelectStmt) stmt() {}

// CTE is one WITH entry. Recursive marks `WITH RECURSIVE` queries whose
// body unions a base case with a self-referencing recursive case.
type CTE struct {
	Name      string
	Columns   []string // optional explicit column names
	Query     *SelectStmt
	Recursive bool
}

// SelectBody is a simple SELECT or a set operation over two bodies.
type SelectBody interface{ body() }

// SetOp combines two select bodies.
type SetOp struct {
	Op    string // "UNION", "UNION ALL", "INTERSECT", "EXCEPT"
	Left  SelectBody
	Right SelectBody
}

func (*SetOp) body() {}

// SimpleSelect is one SELECT ... FROM ... WHERE ... GROUP BY ... HAVING.
type SimpleSelect struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr
	GroupBy  []Expr
	Having   Expr
}

func (*SimpleSelect) body() {}

// SelectItem is one output column. Star selects all columns of Table (or
// of every FROM table when Table is empty).
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
	Table string // for "t.*"
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// TableRef is a named table, a derived table, or a lateral VALUES
// unnesting, optionally chained with JOIN clauses.
type TableRef struct {
	// Exactly one of Table, Subquery, TableFn is set.
	Table    string
	Subquery *SelectStmt
	TableFn  *TableFunc
	Alias    string
	Joins    []JoinClause
}

// TableFunc is the paper's TABLE(VALUES (e1),(e2),...) AS t(col) lateral
// construct: each row of the preceding FROM item is expanded into one row
// per VALUES entry, with the entry's value bound to the declared column.
type TableFunc struct {
	Rows    [][]Expr // each inner slice is one VALUES row
	Columns []string // declared output column names
}

// JoinClause is one JOIN attached to a TableRef.
type JoinClause struct {
	Kind  string // "INNER", "LEFT"
	Right TableRef
	On    Expr
}

// InsertStmt is INSERT INTO t [(cols)] VALUES (...),(...)
// or INSERT INTO t [(cols)] SELECT ...
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr
	Query   *SelectStmt
}

func (*InsertStmt) stmt() {}

// UpdateStmt is UPDATE t SET col = expr, ... [WHERE expr].
type UpdateStmt struct {
	Table string
	Set   []Assignment
	Where Expr
}

func (*UpdateStmt) stmt() {}

// Assignment is one SET column = expr.
type Assignment struct {
	Column string
	Value  Expr
}

// DeleteStmt is DELETE FROM t [WHERE expr].
type DeleteStmt struct {
	Table string
	Where Expr
}

func (*DeleteStmt) stmt() {}

// CreateTableStmt is CREATE TABLE t (col TYPE, ...).
type CreateTableStmt struct {
	Name    string
	Columns []ColumnDef
}

func (*CreateTableStmt) stmt() {}

// ColumnDef is one column definition.
type ColumnDef struct {
	Name       string
	Type       string // BIGINT, DOUBLE, VARCHAR, JSON, BOOLEAN, LIST
	PrimaryKey bool
}

// CreateIndexStmt is CREATE [UNIQUE] INDEX name ON t (expr, ...). Columns
// may be plain column references or expressions (expression indexes, used
// for JSON attribute indexes per paper Section 3.3).
type CreateIndexStmt struct {
	Name   string
	Table  string
	Unique bool
	Exprs  []Expr
}

func (*CreateIndexStmt) stmt() {}

// DropTableStmt is DROP TABLE t.
type DropTableStmt struct{ Name string }

func (*DropTableStmt) stmt() {}

// --- Expressions ---

// ColumnRef references a column, optionally qualified by table alias.
type ColumnRef struct {
	Table  string
	Column string
}

func (*ColumnRef) expr() {}
func (c *ColumnRef) SQL() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// Literal is a constant. Val holds nil, bool, int64, float64, or string.
type Literal struct{ Val any }

func (*Literal) expr() {}
func (l *Literal) SQL() string {
	switch v := l.Val.(type) {
	case nil:
		return "NULL"
	case string:
		return "'" + strings.ReplaceAll(v, "'", "''") + "'"
	case bool:
		if v {
			return "TRUE"
		}
		return "FALSE"
	default:
		return toString(v)
	}
}

// Param is a positional parameter (?), numbered from 0 in parse order.
type Param struct{ Index int }

func (*Param) expr()         {}
func (p *Param) SQL() string { return "?" }

// Unary is NOT x or -x.
type Unary struct {
	Op string // "NOT", "-"
	X  Expr
}

func (*Unary) expr()         {}
func (u *Unary) SQL() string { return u.Op + " (" + u.X.SQL() + ")" }

// Binary is a binary operation: arithmetic, comparison, AND/OR, LIKE, ||.
type Binary struct {
	Op   string
	L, R Expr
}

func (*Binary) expr()         {}
func (b *Binary) SQL() string { return "(" + b.L.SQL() + " " + b.Op + " " + b.R.SQL() + ")" }

// IsNull is x IS [NOT] NULL.
type IsNull struct {
	X   Expr
	Not bool
}

func (*IsNull) expr() {}
func (i *IsNull) SQL() string {
	if i.Not {
		return i.X.SQL() + " IS NOT NULL"
	}
	return i.X.SQL() + " IS NULL"
}

// InList is x [NOT] IN (e1, e2, ...).
type InList struct {
	X    Expr
	List []Expr
	Not  bool
}

func (*InList) expr() {}
func (i *InList) SQL() string {
	parts := make([]string, len(i.List))
	for j, e := range i.List {
		parts[j] = e.SQL()
	}
	op := " IN ("
	if i.Not {
		op = " NOT IN ("
	}
	return i.X.SQL() + op + strings.Join(parts, ", ") + ")"
}

// InSubquery is x [NOT] IN (SELECT ...).
type InSubquery struct {
	X     Expr
	Query *SelectStmt
	Not   bool
}

func (*InSubquery) expr() {}
func (i *InSubquery) SQL() string {
	op := " IN (<subquery>)"
	if i.Not {
		op = " NOT IN (<subquery>)"
	}
	return i.X.SQL() + op
}

// Exists is EXISTS (SELECT ...).
type Exists struct {
	Query *SelectStmt
	Not   bool
}

func (*Exists) expr() {}
func (e *Exists) SQL() string {
	if e.Not {
		return "NOT EXISTS (<subquery>)"
	}
	return "EXISTS (<subquery>)"
}

// ScalarSubquery is (SELECT single-value).
type ScalarSubquery struct{ Query *SelectStmt }

func (*ScalarSubquery) expr()         {}
func (s *ScalarSubquery) SQL() string { return "(<subquery>)" }

// Between is x [NOT] BETWEEN lo AND hi.
type Between struct {
	X, Lo, Hi Expr
	Not       bool
}

func (*Between) expr() {}
func (b *Between) SQL() string {
	op := " BETWEEN "
	if b.Not {
		op = " NOT BETWEEN "
	}
	return b.X.SQL() + op + b.Lo.SQL() + " AND " + b.Hi.SQL()
}

// FuncCall is a scalar or aggregate function call. Star marks COUNT(*);
// Distinct marks COUNT(DISTINCT x).
type FuncCall struct {
	Name     string
	Args     []Expr
	Star     bool
	Distinct bool
}

func (*FuncCall) expr() {}
func (f *FuncCall) SQL() string {
	if f.Star {
		return f.Name + "(*)"
	}
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.SQL()
	}
	inner := strings.Join(parts, ", ")
	if f.Distinct {
		inner = "DISTINCT " + inner
	}
	return f.Name + "(" + inner + ")"
}

// Cast is CAST(x AS TYPE).
type Cast struct {
	X    Expr
	Type string
}

func (*Cast) expr()         {}
func (c *Cast) SQL() string { return "CAST(" + c.X.SQL() + " AS " + c.Type + ")" }

// Subscript is x[i], indexing a LIST value (traversal paths).
type Subscript struct {
	X, Index Expr
}

func (*Subscript) expr()         {}
func (s *Subscript) SQL() string { return s.X.SQL() + "[" + s.Index.SQL() + "]" }

// CaseExpr is CASE [operand] WHEN ... THEN ... [ELSE ...] END.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []WhenClause
	Else    Expr
}

// WhenClause is one WHEN cond THEN result arm.
type WhenClause struct {
	Cond   Expr
	Result Expr
}

func (*CaseExpr) expr() {}
func (c *CaseExpr) SQL() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	if c.Operand != nil {
		sb.WriteString(" " + c.Operand.SQL())
	}
	for _, w := range c.Whens {
		sb.WriteString(" WHEN " + w.Cond.SQL() + " THEN " + w.Result.SQL())
	}
	if c.Else != nil {
		sb.WriteString(" ELSE " + c.Else.SQL())
	}
	sb.WriteString(" END")
	return sb.String()
}

func toString(v any) string {
	switch x := v.(type) {
	case int64:
		return itoa(x)
	case float64:
		return ftoa(x)
	default:
		return "?"
	}
}
