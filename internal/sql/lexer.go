// Package sql implements the SQL front-end of the relational substrate:
// a lexer, an abstract syntax tree, and a recursive-descent parser for the
// dialect the Gremlin translator emits (CTEs, joins, lateral TABLE(VALUES)
// unnesting, JSON_VAL, set operations, and basic DML/DDL).
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexer tokens.
type TokenKind uint8

const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokInt
	TokFloat
	TokString
	TokParam  // ?
	TokSymbol // punctuation and operators
)

// Token is a lexical token with its source position (1-based offsets into
// the query text, for error messages).
type Token struct {
	Kind TokenKind
	Text string // keywords upper-cased; identifiers upper-cased unless quoted
	Pos  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokString:
		return fmt.Sprintf("'%s'", t.Text)
	default:
		return t.Text
	}
}

var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true,
	"GROUP": true, "BY": true, "HAVING": true, "ORDER": true, "ASC": true,
	"DESC": true, "LIMIT": true, "OFFSET": true, "UNION": true, "ALL": true,
	"INTERSECT": true, "EXCEPT": true, "WITH": true, "RECURSIVE": true,
	"AS": true, "JOIN": true, "LEFT": true, "RIGHT": true, "INNER": true,
	"OUTER": true, "ON": true, "AND": true, "OR": true, "NOT": true,
	"IN": true, "IS": true, "NULL": true, "LIKE": true, "BETWEEN": true,
	"TRUE": true, "FALSE": true, "CASE": true, "WHEN": true, "THEN": true,
	"ELSE": true, "END": true, "CAST": true, "EXISTS": true,
	"INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true,
	"SET": true, "DELETE": true, "CREATE": true, "TABLE": true,
	"INDEX": true, "UNIQUE": true, "DROP": true, "COUNT": true,
	"TABLES": true,
}

// Lex tokenizes a SQL string.
func Lex(src string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-':
			// Line comment.
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("sql: unterminated block comment at %d", i+1)
			}
			i += end + 4
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			for {
				if i >= n {
					return nil, fmt.Errorf("sql: unterminated string literal at %d", start+1)
				}
				if src[i] == '\'' {
					if i+1 < n && src[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start + 1})
		case c == '"':
			start := i
			i++
			j := strings.IndexByte(src[i:], '"')
			if j < 0 {
				return nil, fmt.Errorf("sql: unterminated quoted identifier at %d", start+1)
			}
			toks = append(toks, Token{Kind: TokIdent, Text: src[i : i+j], Pos: start + 1})
			i += j + 1
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9'):
			start := i
			isFloat := false
			for i < n && (src[i] >= '0' && src[i] <= '9') {
				i++
			}
			if i < n && src[i] == '.' {
				isFloat = true
				i++
				for i < n && (src[i] >= '0' && src[i] <= '9') {
					i++
				}
			}
			if i < n && (src[i] == 'e' || src[i] == 'E') {
				isFloat = true
				i++
				if i < n && (src[i] == '+' || src[i] == '-') {
					i++
				}
				for i < n && (src[i] >= '0' && src[i] <= '9') {
					i++
				}
			}
			kind := TokInt
			if isFloat {
				kind = TokFloat
			}
			toks = append(toks, Token{Kind: kind, Text: src[start:i], Pos: start + 1})
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(src[i])) {
				i++
			}
			word := strings.ToUpper(src[start:i])
			kind := TokIdent
			if keywords[word] {
				kind = TokKeyword
			}
			toks = append(toks, Token{Kind: kind, Text: word, Pos: start + 1})
		case c == '?':
			toks = append(toks, Token{Kind: TokParam, Text: "?", Pos: i + 1})
			i++
		default:
			start := i
			var sym string
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=", "||":
				sym = two
				i += 2
			default:
				switch c {
				case '(', ')', ',', '.', ';', '*', '+', '-', '/', '%', '=', '<', '>', '[', ']':
					sym = string(c)
					i++
				default:
					return nil, fmt.Errorf("sql: unexpected character %q at %d", c, i+1)
				}
			}
			toks = append(toks, Token{Kind: TokSymbol, Text: sym, Pos: start + 1})
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n + 1})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
