package sql

import (
	"fmt"
	"strconv"
)

func itoa(i int64) string   { return strconv.FormatInt(i, 10) }
func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// Parse parses a single SQL statement.
func Parse(src string) (Statement, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	// Allow a trailing semicolon.
	p.accept(TokSymbol, ";")
	if !p.at(TokEOF, "") {
		return nil, p.errorf("unexpected %s after statement", p.peek())
	}
	return stmt, nil
}

// ParseExpr parses a standalone scalar expression (used by CREATE INDEX
// processing and tests).
func ParseExpr(src string) (Expr, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(TokEOF, "") {
		return nil, p.errorf("unexpected %s after expression", p.peek())
	}
	return e, nil
}

type parser struct {
	toks    []Token
	pos     int
	src     string
	nparams int
}

func (p *parser) peek() Token { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: parse error near position %d: %s", p.peek().Pos, fmt.Sprintf(format, args...))
}

func (p *parser) at(kind TokenKind, text string) bool {
	t := p.peek()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *parser) accept(kind TokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind TokenKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return Token{}, p.errorf("expected %s, found %s", want, p.peek())
}

func (p *parser) acceptKeyword(kw string) bool { return p.accept(TokKeyword, kw) }

func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	// Accept non-reserved keywords as identifiers where unambiguous is
	// complex; require plain identifiers.
	if t.Kind == TokIdent {
		p.pos++
		return t.Text, nil
	}
	return "", p.errorf("expected identifier, found %s", t)
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.at(TokKeyword, "SELECT") || p.at(TokKeyword, "WITH") || p.at(TokSymbol, "("):
		return p.parseSelect()
	case p.acceptKeyword("INSERT"):
		return p.parseInsert()
	case p.acceptKeyword("UPDATE"):
		return p.parseUpdate()
	case p.acceptKeyword("DELETE"):
		return p.parseDelete()
	case p.acceptKeyword("CREATE"):
		return p.parseCreate()
	case p.acceptKeyword("DROP"):
		return p.parseDrop()
	default:
		return nil, p.errorf("expected statement, found %s", p.peek())
	}
}

// parseSelect parses WITH? set-op-tree ORDER BY? LIMIT? OFFSET?.
func (p *parser) parseSelect() (*SelectStmt, error) {
	stmt := &SelectStmt{}
	if p.acceptKeyword("WITH") {
		recursive := p.acceptKeyword("RECURSIVE")
		for {
			cte, err := p.parseCTE(recursive)
			if err != nil {
				return nil, err
			}
			stmt.With = append(stmt.With, cte)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}
	body, err := p.parseSetOps()
	if err != nil {
		return nil, err
	}
	stmt.Body = body
	if p.acceptKeyword("ORDER") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Limit = e
	}
	if p.acceptKeyword("OFFSET") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Offset = e
	}
	return stmt, nil
}

func (p *parser) parseCTE(recursive bool) (CTE, error) {
	name, err := p.expectIdent()
	if err != nil {
		return CTE{}, err
	}
	cte := CTE{Name: name, Recursive: recursive}
	if p.accept(TokSymbol, "(") {
		for {
			col, err := p.expectIdent()
			if err != nil {
				return CTE{}, err
			}
			cte.Columns = append(cte.Columns, col)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return CTE{}, err
		}
	}
	if _, err := p.expect(TokKeyword, "AS"); err != nil {
		return CTE{}, err
	}
	if _, err := p.expect(TokSymbol, "("); err != nil {
		return CTE{}, err
	}
	q, err := p.parseSelect()
	if err != nil {
		return CTE{}, err
	}
	if _, err := p.expect(TokSymbol, ")"); err != nil {
		return CTE{}, err
	}
	cte.Query = q
	return cte, nil
}

// parseSetOps parses a left-associative chain of UNION/INTERSECT/EXCEPT.
func (p *parser) parseSetOps() (SelectBody, error) {
	left, err := p.parseSelectCore()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptKeyword("UNION"):
			op = "UNION"
			if p.acceptKeyword("ALL") {
				op = "UNION ALL"
			}
		case p.acceptKeyword("INTERSECT"):
			op = "INTERSECT"
		case p.acceptKeyword("EXCEPT"):
			op = "EXCEPT"
		default:
			return left, nil
		}
		right, err := p.parseSelectCore()
		if err != nil {
			return nil, err
		}
		left = &SetOp{Op: op, Left: left, Right: right}
	}
}

// parseSelectCore parses one SELECT ... or a parenthesized set-op tree.
func (p *parser) parseSelectCore() (SelectBody, error) {
	if p.accept(TokSymbol, "(") {
		body, err := p.parseSetOps()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return body, nil
	}
	if _, err := p.expect(TokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	sel := &SimpleSelect{}
	sel.Distinct = p.acceptKeyword("DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	if p.acceptKeyword("FROM") {
		for {
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, ref)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept(TokSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	// t.* form.
	if p.peek().Kind == TokIdent && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].Kind == TokSymbol && p.toks[p.pos+1].Text == "." &&
		p.toks[p.pos+2].Kind == TokSymbol && p.toks[p.pos+2].Text == "*" {
		tbl := p.next().Text
		p.next() // .
		p.next() // *
		return SelectItem{Star: true, Table: tbl}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if p.peek().Kind == TokIdent {
		item.Alias = p.next().Text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	ref, err := p.parseTablePrimary()
	if err != nil {
		return TableRef{}, err
	}
	for {
		var kind string
		switch {
		case p.acceptKeyword("LEFT"):
			p.acceptKeyword("OUTER")
			if _, err := p.expect(TokKeyword, "JOIN"); err != nil {
				return TableRef{}, err
			}
			kind = "LEFT"
		case p.acceptKeyword("INNER"):
			if _, err := p.expect(TokKeyword, "JOIN"); err != nil {
				return TableRef{}, err
			}
			kind = "INNER"
		case p.acceptKeyword("JOIN"):
			kind = "INNER"
		default:
			return ref, nil
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return TableRef{}, err
		}
		if _, err := p.expect(TokKeyword, "ON"); err != nil {
			return TableRef{}, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return TableRef{}, err
		}
		ref.Joins = append(ref.Joins, JoinClause{Kind: kind, Right: right, On: on})
	}
}

func (p *parser) parseTablePrimary() (TableRef, error) {
	var ref TableRef
	switch {
	case p.at(TokKeyword, "TABLE") || p.at(TokKeyword, "TABLES"):
		// TABLE(VALUES (e1),(e2),...) AS t(col,...) — also accept the
		// TABLES spelling that appears in the paper's listings.
		p.next()
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return ref, err
		}
		if _, err := p.expect(TokKeyword, "VALUES"); err != nil {
			return ref, err
		}
		fn := &TableFunc{}
		for {
			if _, err := p.expect(TokSymbol, "("); err != nil {
				return ref, err
			}
			var row []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return ref, err
				}
				row = append(row, e)
				if !p.accept(TokSymbol, ",") {
					break
				}
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return ref, err
			}
			fn.Rows = append(fn.Rows, row)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return ref, err
		}
		p.acceptKeyword("AS")
		alias, err := p.expectIdent()
		if err != nil {
			return ref, err
		}
		ref.Alias = alias
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return ref, err
		}
		for {
			col, err := p.expectIdent()
			if err != nil {
				return ref, err
			}
			fn.Columns = append(fn.Columns, col)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return ref, err
		}
		ref.TableFn = fn
	case p.accept(TokSymbol, "("):
		q, err := p.parseSelect()
		if err != nil {
			return ref, err
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return ref, err
		}
		ref.Subquery = q
	default:
		name, err := p.expectIdent()
		if err != nil {
			return ref, err
		}
		ref.Table = name
	}
	if ref.TableFn == nil {
		if p.acceptKeyword("AS") {
			alias, err := p.expectIdent()
			if err != nil {
				return ref, err
			}
			ref.Alias = alias
		} else if p.peek().Kind == TokIdent {
			ref.Alias = p.next().Text
		}
	}
	return ref, nil
}

func (p *parser) parseInsert() (Statement, error) {
	if _, err := p.expect(TokKeyword, "INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: table}
	if p.accept(TokSymbol, "(") {
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, col)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("VALUES") {
		for {
			if _, err := p.expect(TokSymbol, "("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if !p.accept(TokSymbol, ",") {
					break
				}
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			stmt.Rows = append(stmt.Rows, row)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		return stmt, nil
	}
	q, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	stmt.Query = q
	return stmt, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{Table: table}
	if _, err := p.expect(TokKeyword, "SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Set = append(stmt.Set, Assignment{Column: col, Value: e})
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	return stmt, nil
}

func (p *parser) parseDelete() (Statement, error) {
	if _, err := p.expect(TokKeyword, "FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Table: table}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	return stmt, nil
}

func (p *parser) parseCreate() (Statement, error) {
	unique := p.acceptKeyword("UNIQUE")
	switch {
	case !unique && p.acceptKeyword("TABLE"):
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		stmt := &CreateTableStmt{Name: name}
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			typ := "VARCHAR"
			if p.peek().Kind == TokIdent {
				typ = p.next().Text
			}
			def := ColumnDef{Name: col, Type: typ}
			// Optional PRIMARY KEY marker (two identifiers).
			if p.peek().Kind == TokIdent && p.peek().Text == "PRIMARY" {
				p.next()
				if p.peek().Kind == TokIdent && p.peek().Text == "KEY" {
					p.next()
					def.PrimaryKey = true
				} else {
					return nil, p.errorf("expected KEY after PRIMARY")
				}
			}
			stmt.Columns = append(stmt.Columns, def)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return stmt, nil
	case p.acceptKeyword("INDEX"):
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		// ON table (expr, ...)
		if !p.accept(TokKeyword, "ON") {
			return nil, p.errorf("expected ON in CREATE INDEX")
		}
		table, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		stmt := &CreateIndexStmt{Name: name, Table: table, Unique: unique}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.Exprs = append(stmt.Exprs, e)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return stmt, nil
	default:
		return nil, p.errorf("expected TABLE or INDEX after CREATE")
	}
}

func (p *parser) parseDrop() (Statement, error) {
	if _, err := p.expect(TokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &DropTableStmt{Name: name}, nil
}

// --- Expression parsing (precedence climbing) ---

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.acceptKeyword("IS") {
		not := p.acceptKeyword("NOT")
		if _, err := p.expect(TokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &IsNull{X: left, Not: not}, nil
	}
	notIn := false
	if p.at(TokKeyword, "NOT") && p.pos+1 < len(p.toks) &&
		(p.toks[p.pos+1].Text == "IN" || p.toks[p.pos+1].Text == "LIKE" || p.toks[p.pos+1].Text == "BETWEEN") {
		p.next()
		notIn = true
	}
	switch {
	case p.acceptKeyword("IN"):
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		if p.at(TokKeyword, "SELECT") || p.at(TokKeyword, "WITH") {
			q, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			return &InSubquery{X: left, Query: q, Not: notIn}, nil
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return &InList{X: left, List: list, Not: notIn}, nil
	case p.acceptKeyword("LIKE"):
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		var e Expr = &Binary{Op: "LIKE", L: left, R: right}
		if notIn {
			e = &Unary{Op: "NOT", X: e}
		}
		return e, nil
	case p.acceptKeyword("BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Between{X: left, Lo: lo, Hi: hi, Not: notIn}, nil
	}
	for _, op := range []string{"=", "<>", "!=", "<=", ">=", "<", ">"} {
		if p.accept(TokSymbol, op) {
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			normalized := op
			if op == "!=" {
				normalized = "<>"
			}
			return &Binary{Op: normalized, L: left, R: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(TokSymbol, "+"):
			op = "+"
		case p.accept(TokSymbol, "-"):
			op = "-"
		case p.accept(TokSymbol, "||"):
			op = "||"
		default:
			return left, nil
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, L: left, R: right}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(TokSymbol, "*"):
			op = "*"
		case p.accept(TokSymbol, "/"):
			op = "/"
		case p.accept(TokSymbol, "%"):
			op = "%"
		default:
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, L: left, R: right}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(TokSymbol, "-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := x.(*Literal); ok {
			switch v := lit.Val.(type) {
			case int64:
				return &Literal{Val: -v}, nil
			case float64:
				return &Literal{Val: -v}, nil
			}
		}
		return &Unary{Op: "-", X: x}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.accept(TokSymbol, "[") {
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, "]"); err != nil {
			return nil, err
		}
		e = &Subscript{X: e, Index: idx}
	}
	return e, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.Kind == TokInt:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer literal %s", t.Text)
		}
		return &Literal{Val: v}, nil
	case t.Kind == TokFloat:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errorf("bad float literal %s", t.Text)
		}
		return &Literal{Val: v}, nil
	case t.Kind == TokString:
		p.next()
		return &Literal{Val: t.Text}, nil
	case t.Kind == TokParam:
		p.next()
		e := &Param{Index: p.nparams}
		p.nparams++
		return e, nil
	case p.acceptKeyword("NULL"):
		return &Literal{Val: nil}, nil
	case p.acceptKeyword("TRUE"):
		return &Literal{Val: true}, nil
	case p.acceptKeyword("FALSE"):
		return &Literal{Val: false}, nil
	case p.acceptKeyword("CASE"):
		return p.parseCase()
	case p.acceptKeyword("CAST"):
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "AS"); err != nil {
			return nil, err
		}
		typ, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return &Cast{X: x, Type: typ}, nil
	case p.acceptKeyword("EXISTS"):
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return &Exists{Query: q}, nil
	case p.acceptKeyword("COUNT"):
		// COUNT is a keyword so COUNT(*) parses cleanly.
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		if p.accept(TokSymbol, "*") {
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			return &FuncCall{Name: "COUNT", Star: true}, nil
		}
		distinct := p.acceptKeyword("DISTINCT")
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return &FuncCall{Name: "COUNT", Args: []Expr{arg}, Distinct: distinct}, nil
	case p.accept(TokSymbol, "("):
		if p.at(TokKeyword, "SELECT") || p.at(TokKeyword, "WITH") {
			q, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			return &ScalarSubquery{Query: q}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == TokIdent:
		p.next()
		// Function call?
		if p.accept(TokSymbol, "(") {
			fc := &FuncCall{Name: t.Text}
			fc.Distinct = p.acceptKeyword("DISTINCT")
			if !p.accept(TokSymbol, ")") {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, arg)
					if !p.accept(TokSymbol, ",") {
						break
					}
				}
				if _, err := p.expect(TokSymbol, ")"); err != nil {
					return nil, err
				}
			}
			return fc, nil
		}
		// Qualified column?
		if p.accept(TokSymbol, ".") {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: t.Text, Column: col}, nil
		}
		return &ColumnRef{Column: t.Text}, nil
	default:
		return nil, p.errorf("expected expression, found %s", t)
	}
}

func (p *parser) parseCase() (Expr, error) {
	c := &CaseExpr{}
	if !p.at(TokKeyword, "WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = op
	}
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "THEN"); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, WhenClause{Cond: cond, Result: res})
	}
	if len(c.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if _, err := p.expect(TokKeyword, "END"); err != nil {
		return nil, err
	}
	return c, nil
}
