package sql

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return stmt
}

func mustSelect(t *testing.T, src string) *SelectStmt {
	t.Helper()
	stmt := mustParse(t, src)
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want *SelectStmt", src, stmt)
	}
	return sel
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a1, 'it''s', 3.14, 42, ? FROM t -- comment\n/* block */ WHERE x <= 5")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
		texts = append(texts, tk.Text)
	}
	want := []string{"SELECT", "A1", ",", "it's", ",", "3.14", ",", "42", ",", "?", "FROM", "T", "WHERE", "X", "<=", "5", ""}
	if len(texts) != len(want) {
		t.Fatalf("token texts = %v", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Fatalf("tok[%d] = %q, want %q (all: %v)", i, texts[i], want[i], texts)
		}
	}
	if kinds[3] != TokString || kinds[9] != TokParam || kinds[14] != TokSymbol {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", `"unterminated`, "/* unterminated", "SELECT @"} {
		if _, err := Lex(src); err == nil {
			t.Fatalf("Lex(%q) succeeded, want error", src)
		}
	}
}

func TestParseSimpleSelect(t *testing.T) {
	sel := mustSelect(t, "SELECT a, b AS bee, t.* FROM t1, t2 AS u WHERE a = 1 AND b <> 'x'")
	body := sel.Body.(*SimpleSelect)
	if len(body.Items) != 3 {
		t.Fatalf("items = %d", len(body.Items))
	}
	if body.Items[1].Alias != "BEE" {
		t.Fatalf("alias = %q", body.Items[1].Alias)
	}
	if !body.Items[2].Star || body.Items[2].Table != "T" {
		t.Fatalf("t.* item = %+v", body.Items[2])
	}
	if len(body.From) != 2 || body.From[1].Alias != "U" {
		t.Fatalf("from = %+v", body.From)
	}
	if body.Where == nil {
		t.Fatal("missing where")
	}
}

func TestParseSelectStar(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM t")
	body := sel.Body.(*SimpleSelect)
	if len(body.Items) != 1 || !body.Items[0].Star {
		t.Fatalf("items = %+v", body.Items)
	}
}

func TestParseDistinctCountLimit(t *testing.T) {
	sel := mustSelect(t, "SELECT DISTINCT val FROM t ORDER BY val DESC LIMIT 10 OFFSET 5")
	body := sel.Body.(*SimpleSelect)
	if !body.Distinct {
		t.Fatal("distinct not parsed")
	}
	if len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc {
		t.Fatalf("order by = %+v", sel.OrderBy)
	}
	if sel.Limit == nil || sel.Offset == nil {
		t.Fatal("limit/offset missing")
	}

	sel = mustSelect(t, "SELECT COUNT(*) FROM t")
	fc := sel.Body.(*SimpleSelect).Items[0].Expr.(*FuncCall)
	if fc.Name != "COUNT" || !fc.Star {
		t.Fatalf("count = %+v", fc)
	}
	sel = mustSelect(t, "SELECT COUNT(DISTINCT x) FROM t")
	fc = sel.Body.(*SimpleSelect).Items[0].Expr.(*FuncCall)
	if !fc.Distinct || len(fc.Args) != 1 {
		t.Fatalf("count distinct = %+v", fc)
	}
}

func TestParseJoins(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.y INNER JOIN c ON b.z = c.w")
	body := sel.Body.(*SimpleSelect)
	if len(body.From) != 1 {
		t.Fatalf("from = %d refs", len(body.From))
	}
	joins := body.From[0].Joins
	if len(joins) != 2 || joins[0].Kind != "LEFT" || joins[1].Kind != "INNER" {
		t.Fatalf("joins = %+v", joins)
	}
	// Bare JOIN means INNER.
	sel = mustSelect(t, "SELECT * FROM a JOIN b ON a.x = b.y")
	if sel.Body.(*SimpleSelect).From[0].Joins[0].Kind != "INNER" {
		t.Fatal("bare JOIN should be INNER")
	}
}

func TestParseCTE(t *testing.T) {
	sel := mustSelect(t, `WITH t1 AS (SELECT vid AS val FROM va), t2(v) AS (SELECT val FROM t1) SELECT COUNT(*) FROM t2`)
	if len(sel.With) != 2 {
		t.Fatalf("with = %d", len(sel.With))
	}
	if sel.With[0].Name != "T1" || sel.With[1].Columns[0] != "V" {
		t.Fatalf("ctes = %+v", sel.With)
	}
}

func TestParseRecursiveCTE(t *testing.T) {
	sel := mustSelect(t, `WITH RECURSIVE r(v, d) AS (
		SELECT val, 0 FROM seed
		UNION ALL
		SELECT e.outv, r.d + 1 FROM r, ea e WHERE e.inv = r.v AND r.d < 5
	) SELECT DISTINCT v FROM r`)
	if len(sel.With) != 1 || !sel.With[0].Recursive {
		t.Fatalf("recursive cte = %+v", sel.With)
	}
	if _, ok := sel.With[0].Query.Body.(*SetOp); !ok {
		t.Fatal("recursive body should be a set op")
	}
}

func TestParseTableFunc(t *testing.T) {
	sel := mustSelect(t, `SELECT t.val FROM opa p, TABLE(VALUES(p.val0),(p.val1),(p.val2)) AS t(val) WHERE t.val IS NOT NULL`)
	body := sel.Body.(*SimpleSelect)
	if len(body.From) != 2 {
		t.Fatalf("from = %d", len(body.From))
	}
	fn := body.From[1].TableFn
	if fn == nil || len(fn.Rows) != 3 || fn.Columns[0] != "VAL" {
		t.Fatalf("tablefn = %+v", fn)
	}
	// TABLES spelling from the paper listings.
	sel = mustSelect(t, `SELECT t.val FROM opa p, TABLES(VALUES(p.val0)) AS t(val)`)
	if sel.Body.(*SimpleSelect).From[1].TableFn == nil {
		t.Fatal("TABLES spelling rejected")
	}
}

func TestParseSetOps(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM x UNION ALL SELECT b FROM y UNION SELECT c FROM z")
	top, ok := sel.Body.(*SetOp)
	if !ok || top.Op != "UNION" {
		t.Fatalf("top = %+v", sel.Body)
	}
	inner, ok := top.Left.(*SetOp)
	if !ok || inner.Op != "UNION ALL" {
		t.Fatalf("inner = %+v", top.Left)
	}
	sel = mustSelect(t, "SELECT a FROM x INTERSECT SELECT b FROM y")
	if sel.Body.(*SetOp).Op != "INTERSECT" {
		t.Fatal("intersect")
	}
	sel = mustSelect(t, "SELECT a FROM x EXCEPT SELECT b FROM y")
	if sel.Body.(*SetOp).Op != "EXCEPT" {
		t.Fatal("except")
	}
}

func TestParseExpressions(t *testing.T) {
	cases := []string{
		"a + b * c - d / e % f",
		"x LIKE '%en'",
		"x NOT LIKE 'a%'",
		"x IN (1, 2, 3)",
		"x NOT IN (SELECT v FROM t)",
		"x IS NULL",
		"x IS NOT NULL",
		"x BETWEEN 1 AND 10",
		"NOT (a = b)",
		"COALESCE(a, b, c)",
		"JSON_VAL(attr, 'name')",
		"CAST(x AS BIGINT)",
		"path[0]",
		"(a || b)",
		"CASE WHEN a = 1 THEN 'x' ELSE 'y' END",
		"CASE a WHEN 1 THEN 'x' WHEN 2 THEN 'y' END",
		"EXISTS (SELECT 1 FROM t)",
		"-5",
		"-x",
		"a = ? AND b = ?",
	}
	for _, src := range cases {
		if _, err := ParseExpr(src); err != nil {
			t.Fatalf("ParseExpr(%q): %v", src, err)
		}
	}
}

func TestParamNumbering(t *testing.T) {
	e, err := ParseExpr("a = ? AND b = ? OR c = ?")
	if err != nil {
		t.Fatal(err)
	}
	var idxs []int
	var walk func(Expr)
	walk = func(x Expr) {
		switch v := x.(type) {
		case *Binary:
			walk(v.L)
			walk(v.R)
		case *Param:
			idxs = append(idxs, v.Index)
		}
	}
	walk(e)
	if len(idxs) != 3 || idxs[0] != 0 || idxs[1] != 1 || idxs[2] != 2 {
		t.Fatalf("param indexes = %v", idxs)
	}
}

func TestParseDML(t *testing.T) {
	ins := mustParse(t, "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").(*InsertStmt)
	if ins.Table != "T" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("insert = %+v", ins)
	}
	ins2 := mustParse(t, "INSERT INTO t SELECT a FROM u").(*InsertStmt)
	if ins2.Query == nil {
		t.Fatal("insert-select missing query")
	}
	upd := mustParse(t, "UPDATE t SET a = 1, b = b + 1 WHERE id = ?").(*UpdateStmt)
	if upd.Table != "T" || len(upd.Set) != 2 || upd.Where == nil {
		t.Fatalf("update = %+v", upd)
	}
	del := mustParse(t, "DELETE FROM t WHERE id = 3").(*DeleteStmt)
	if del.Table != "T" || del.Where == nil {
		t.Fatalf("delete = %+v", del)
	}
}

func TestParseDDL(t *testing.T) {
	ct := mustParse(t, "CREATE TABLE va (vid BIGINT PRIMARY KEY, attr JSON)").(*CreateTableStmt)
	if ct.Name != "VA" || len(ct.Columns) != 2 || !ct.Columns[0].PrimaryKey || ct.Columns[1].Type != "JSON" {
		t.Fatalf("create table = %+v", ct)
	}
	ci := mustParse(t, "CREATE UNIQUE INDEX ix ON t (a, JSON_VAL(attr, 'name'))").(*CreateIndexStmt)
	if !ci.Unique || ci.Table != "T" || len(ci.Exprs) != 2 {
		t.Fatalf("create index = %+v", ci)
	}
	dt := mustParse(t, "DROP TABLE t").(*DropTableStmt)
	if dt.Name != "T" {
		t.Fatalf("drop = %+v", dt)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t GROUP",
		"INSERT t VALUES (1)",
		"UPDATE t a = 1",
		"DELETE t",
		"CREATE VIEW v",
		"SELECT * FROM t extra garbage ,",
		"SELECT a FROM t WHERE a IN ()",
		"CASE END",
		"SELECT CAST(a, BIGINT) FROM t",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Fatalf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParsePaperFigure7(t *testing.T) {
	// The full translated query from paper Figure 7 must parse.
	q := `WITH TEMP_1 AS (
		SELECT VID AS VAL FROM VA WHERE JSON_VAL(ATTR, 'tag') = 'w'
	), TEMP_2_0 AS (
		SELECT T.VAL FROM TEMP_1 V, OPA P, TABLE(VALUES(P.VAL0), (P.VAL1), (P.VAL2)) AS T(VAL)
		WHERE V.VAL = P.VID AND T.VAL IS NOT NULL
	), TEMP_2_1 AS (
		SELECT COALESCE(S.VAL, P.VAL) AS VAL FROM TEMP_2_0 P LEFT OUTER JOIN OSA S ON P.VAL = S.VALID
	), TEMP_2_2 AS (
		SELECT T.VAL FROM TEMP_1 V, IPA P, TABLE(VALUES(P.VAL0), (P.VAL1)) AS T(VAL)
		WHERE V.VAL = P.VID AND T.VAL IS NOT NULL
	), TEMP_2_3 AS (
		SELECT COALESCE(S.VAL, P.VAL) AS VAL FROM TEMP_2_2 P LEFT OUTER JOIN ISA S ON P.VAL = S.VALID
	), TEMP_2_4 AS (
		SELECT VAL FROM TEMP_2_1 UNION ALL SELECT VAL FROM TEMP_2_3
	), TEMP_3 AS (
		SELECT DISTINCT VAL AS VAL FROM TEMP_2_4
	) SELECT COUNT(*) FROM TEMP_3`
	sel := mustSelect(t, q)
	if len(sel.With) != 7 {
		t.Fatalf("with = %d, want 7", len(sel.With))
	}
}

func TestExprSQLRendering(t *testing.T) {
	cases := map[string]string{
		"a = 1":                 "(A = 1)",
		"JSON_VAL(attr,'name')": "JSON_VAL(ATTR, 'name')",
		"x IS NOT NULL":         "X IS NOT NULL",
		"a IN (1, 2)":           "A IN (1, 2)",
		"COUNT(*)":              "COUNT(*)",
		"path[0]":               "PATH[0]",
	}
	for src, want := range cases {
		e, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("ParseExpr(%q): %v", src, err)
		}
		if got := e.SQL(); got != want {
			t.Fatalf("SQL(%q) = %q, want %q", src, got, want)
		}
	}
	// Re-parsing a rendered expression must succeed (stability).
	for src := range cases {
		e, _ := ParseExpr(src)
		if _, err := ParseExpr(e.SQL()); err != nil {
			t.Fatalf("re-parse of %q failed: %v", e.SQL(), err)
		}
	}
}

func TestScalarSubquery(t *testing.T) {
	sel := mustSelect(t, "SELECT (SELECT COUNT(*) FROM u) FROM t")
	item := sel.Body.(*SimpleSelect).Items[0]
	if _, ok := item.Expr.(*ScalarSubquery); !ok {
		t.Fatalf("item = %T", item.Expr)
	}
}

func TestParenthesizedSetOpBody(t *testing.T) {
	sel := mustSelect(t, "(SELECT a FROM x UNION SELECT b FROM y) INTERSECT SELECT c FROM z")
	top := sel.Body.(*SetOp)
	if top.Op != "INTERSECT" {
		t.Fatalf("top op = %s", top.Op)
	}
	if strings.ToUpper(top.Left.(*SetOp).Op) != "UNION" {
		t.Fatal("left should be the parenthesized union")
	}
}
