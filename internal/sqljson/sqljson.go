// Package sqljson implements the JSON document support the SQLGraph schema
// relies on: the VA and EA tables store vertex and edge attributes in a
// JSON column, and queries reach into those documents with the JSON_VAL
// SQL function (paper Figures 5 and 7).
//
// Documents are parsed once and kept structured, so repeated JSON_VAL
// calls during query evaluation do not re-parse the text. Numbers are kept
// as int64 when they are integral, otherwise float64, mirroring the
// numeric casting behavior the paper's micro-benchmark (Table 2) exercises.
package sqljson

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Doc is a parsed JSON object. The zero value is an empty document.
type Doc struct {
	m map[string]any
}

// New returns an empty document.
func New() *Doc { return &Doc{m: map[string]any{}} }

// FromMap builds a document from a Go map. Values must be nil, bool,
// int/int64, float64, string, []any, map[string]any, or nested *Doc.
func FromMap(m map[string]any) *Doc {
	d := New()
	for k, v := range m {
		d.Set(k, v)
	}
	return d
}

// Parse decodes a JSON object.
func Parse(s string) (*Doc, error) {
	dec := json.NewDecoder(strings.NewReader(s))
	dec.UseNumber()
	var raw map[string]any
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("sqljson: parse: %w", err)
	}
	return &Doc{m: normalizeMap(raw)}, nil
}

func normalizeMap(m map[string]any) map[string]any {
	out := make(map[string]any, len(m))
	for k, v := range m {
		out[k] = normalize(v)
	}
	return out
}

func normalize(v any) any {
	switch x := v.(type) {
	case json.Number:
		if i, err := x.Int64(); err == nil {
			return i
		}
		f, _ := x.Float64()
		return f
	case int:
		return int64(x)
	case float64:
		if x == math.Trunc(x) && math.Abs(x) < 1<<53 {
			return int64(x)
		}
		return x
	case map[string]any:
		return normalizeMap(x)
	case []any:
		out := make([]any, len(x))
		for i, e := range x {
			out[i] = normalize(e)
		}
		return out
	case *Doc:
		return x.m
	default:
		return v
	}
}

// Len reports the number of top-level keys.
func (d *Doc) Len() int {
	if d == nil {
		return 0
	}
	return len(d.m)
}

// Keys returns the top-level keys in sorted order.
func (d *Doc) Keys() []string {
	if d == nil {
		return nil
	}
	keys := make([]string, 0, len(d.m))
	for k := range d.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Set stores v (normalized) under key.
func (d *Doc) Set(key string, v any) {
	if d.m == nil {
		d.m = map[string]any{}
	}
	d.m[key] = normalize(v)
}

// Delete removes key and reports whether it was present.
func (d *Doc) Delete(key string) bool {
	if d == nil || d.m == nil {
		return false
	}
	_, ok := d.m[key]
	delete(d.m, key)
	return ok
}

// Has reports whether the top-level key exists.
func (d *Doc) Has(key string) bool {
	if d == nil {
		return false
	}
	_, ok := d.m[key]
	return ok
}

// Get returns the value at the top-level key.
func (d *Doc) Get(key string) (any, bool) {
	if d == nil {
		return nil, false
	}
	v, ok := d.m[key]
	return v, ok
}

// ErrNoValue is returned by Val for paths that do not resolve.
var ErrNoValue = errors.New("sqljson: path has no value")

// Val resolves a JSON_VAL-style path: dot-separated keys, with [i]
// suffixes for array elements ("a.b[2].c"). It returns ErrNoValue when any
// step is missing.
func (d *Doc) Val(path string) (any, error) {
	if d == nil {
		return nil, ErrNoValue
	}
	var cur any = d.m
	for _, step := range splitPath(path) {
		if step.key != "" {
			m, ok := cur.(map[string]any)
			if !ok {
				return nil, ErrNoValue
			}
			cur, ok = m[step.key]
			if !ok {
				return nil, ErrNoValue
			}
		}
		if step.index >= 0 {
			arr, ok := cur.([]any)
			if !ok || step.index >= len(arr) {
				return nil, ErrNoValue
			}
			cur = arr[step.index]
		}
	}
	return cur, nil
}

type pathStep struct {
	key   string
	index int // -1 when absent
}

func splitPath(path string) []pathStep {
	var steps []pathStep
	for _, part := range strings.Split(path, ".") {
		idx := -1
		if open := strings.IndexByte(part, '['); open >= 0 && strings.HasSuffix(part, "]") {
			if n, err := strconv.Atoi(part[open+1 : len(part)-1]); err == nil {
				idx = n
				part = part[:open]
			}
		}
		steps = append(steps, pathStep{key: part, index: idx})
	}
	return steps
}

// Map returns a deep copy of the document as a plain Go map.
func (d *Doc) Map() map[string]any {
	if d == nil {
		return map[string]any{}
	}
	return cloneMap(d.mOrEmpty())
}

// Clone returns a deep copy of the document.
func (d *Doc) Clone() *Doc {
	if d == nil {
		return New()
	}
	return &Doc{m: cloneMap(d.m)}
}

func cloneMap(m map[string]any) map[string]any {
	out := make(map[string]any, len(m))
	for k, v := range m {
		out[k] = cloneVal(v)
	}
	return out
}

func cloneVal(v any) any {
	switch x := v.(type) {
	case map[string]any:
		return cloneMap(x)
	case []any:
		out := make([]any, len(x))
		for i, e := range x {
			out[i] = cloneVal(e)
		}
		return out
	default:
		return v
	}
}

// String renders the document as canonical JSON with sorted keys, so test
// output and on-disk sizes are deterministic.
func (d *Doc) String() string {
	var sb strings.Builder
	writeJSON(&sb, d.mOrEmpty())
	return sb.String()
}

func (d *Doc) mOrEmpty() map[string]any {
	if d == nil || d.m == nil {
		return map[string]any{}
	}
	return d.m
}

// MarshalJSON implements json.Marshaler with sorted keys.
func (d *Doc) MarshalJSON() ([]byte, error) { return []byte(d.String()), nil }

// UnmarshalJSON implements json.Unmarshaler.
func (d *Doc) UnmarshalJSON(b []byte) error {
	parsed, err := Parse(string(b))
	if err != nil {
		return err
	}
	d.m = parsed.m
	return nil
}

func writeJSON(sb *strings.Builder, v any) {
	switch x := v.(type) {
	case nil:
		sb.WriteString("null")
	case bool:
		if x {
			sb.WriteString("true")
		} else {
			sb.WriteString("false")
		}
	case int64:
		sb.WriteString(strconv.FormatInt(x, 10))
	case float64:
		sb.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
	case string:
		b, _ := json.Marshal(x)
		sb.Write(b)
	case []any:
		sb.WriteByte('[')
		for i, e := range x {
			if i > 0 {
				sb.WriteByte(',')
			}
			writeJSON(sb, e)
		}
		sb.WriteByte(']')
	case map[string]any:
		sb.WriteByte('{')
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i, k := range keys {
			if i > 0 {
				sb.WriteByte(',')
			}
			b, _ := json.Marshal(k)
			sb.Write(b)
			sb.WriteByte(':')
			writeJSON(sb, x[k])
		}
		sb.WriteByte('}')
	default:
		b, _ := json.Marshal(x)
		sb.Write(b)
	}
}

// Size approximates the serialized size in bytes without serializing; used
// by the storage layer to report on-disk footprint (paper Section 5.1
// compares database sizes).
func (d *Doc) Size() int {
	return sizeOf(d.mOrEmpty())
}

func sizeOf(v any) int {
	switch x := v.(type) {
	case nil:
		return 4
	case bool:
		return 5
	case int64:
		if x == 0 {
			return 1
		}
		n := 0
		if x < 0 {
			n++
		}
		for x != 0 {
			x /= 10
			n++
		}
		return n
	case float64:
		return 12
	case string:
		return len(x) + 2
	case []any:
		n := 2
		for _, e := range x {
			n += sizeOf(e) + 1
		}
		return n
	case map[string]any:
		n := 2
		for k, e := range x {
			n += len(k) + 3 + sizeOf(e) + 1
		}
		return n
	default:
		return 8
	}
}
