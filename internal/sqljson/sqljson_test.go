package sqljson

import (
	"encoding/json"
	"testing"
	"testing/quick"
)

func TestParseAndVal(t *testing.T) {
	d, err := Parse(`{"name":"marko","age":29,"langs":["java","groovy"],"addr":{"city":"x","zip":[1,2]}}`)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		path string
		want any
	}{
		{"name", "marko"},
		{"age", int64(29)},
		{"langs[0]", "java"},
		{"langs[1]", "groovy"},
		{"addr.city", "x"},
		{"addr.zip[1]", int64(2)},
	}
	for _, c := range cases {
		got, err := d.Val(c.path)
		if err != nil {
			t.Fatalf("Val(%q): %v", c.path, err)
		}
		if got != c.want {
			t.Fatalf("Val(%q) = %v (%T), want %v (%T)", c.path, got, got, c.want, c.want)
		}
	}
	for _, p := range []string{"missing", "addr.state", "langs[5]", "name.sub", "addr.zip[1].x"} {
		if _, err := d.Val(p); err != ErrNoValue {
			t.Fatalf("Val(%q) err = %v, want ErrNoValue", p, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "[1,2]", "{", `{"a":}`} {
		if _, err := Parse(s); err == nil {
			t.Fatalf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestNumbersStayIntegral(t *testing.T) {
	d, err := Parse(`{"i":29,"f":2.5,"big":9007199254740993}`)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := d.Val("i"); v != int64(29) {
		t.Fatalf("i = %v (%T)", v, v)
	}
	if v, _ := d.Val("f"); v != 2.5 {
		t.Fatalf("f = %v (%T)", v, v)
	}
	if v, _ := d.Val("big"); v != int64(9007199254740993) {
		t.Fatalf("big = %v (%T)", v, v)
	}
}

func TestSetDeleteHas(t *testing.T) {
	d := New()
	d.Set("a", 1)
	d.Set("b", "two")
	d.Set("c", []any{1, "x"})
	if !d.Has("a") || !d.Has("b") || !d.Has("c") || d.Has("d") {
		t.Fatal("Has mismatch")
	}
	if v, _ := d.Val("a"); v != int64(1) {
		t.Fatalf("a = %v (%T), want int64(1)", v, v)
	}
	if !d.Delete("a") {
		t.Fatal("Delete(a) = false")
	}
	if d.Delete("a") {
		t.Fatal("second Delete(a) = true")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
}

func TestStringCanonical(t *testing.T) {
	d := New()
	d.Set("b", 2)
	d.Set("a", "x")
	if got, want := d.String(), `{"a":"x","b":2}`; got != want {
		t.Fatalf("String() = %s, want %s", got, want)
	}
}

func TestRoundTrip(t *testing.T) {
	src := `{"a":1,"b":[true,null,{"c":"d"}],"e":-2.25}`
	d, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Parse(d.String())
	if err != nil {
		t.Fatal(err)
	}
	if d.String() != d2.String() {
		t.Fatalf("round trip mismatch: %s vs %s", d, d2)
	}
}

func TestClone(t *testing.T) {
	d, _ := Parse(`{"a":{"b":1},"c":[1,2]}`)
	cl := d.Clone()
	cl.Set("a", "changed")
	if v, _ := d.Val("a.b"); v != int64(1) {
		t.Fatal("Clone mutated original")
	}
	var nilDoc *Doc
	if nilDoc.Clone().Len() != 0 {
		t.Fatal("Clone of nil doc not empty")
	}
}

func TestNilDocSafe(t *testing.T) {
	var d *Doc
	if d.Len() != 0 || d.Has("x") || d.Keys() != nil {
		t.Fatal("nil doc accessors not safe")
	}
	if _, err := d.Val("x"); err != ErrNoValue {
		t.Fatal("nil doc Val should be ErrNoValue")
	}
}

func TestMarshalerInterface(t *testing.T) {
	d := New()
	d.Set("k", "v")
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var d2 Doc
	if err := json.Unmarshal(b, &d2); err != nil {
		t.Fatal(err)
	}
	if v, _ := d2.Val("k"); v != "v" {
		t.Fatalf("unmarshal got %v", v)
	}
}

func TestKeysSorted(t *testing.T) {
	d := New()
	for _, k := range []string{"zeta", "alpha", "mid"} {
		d.Set(k, 1)
	}
	keys := d.Keys()
	if len(keys) != 3 || keys[0] != "alpha" || keys[1] != "mid" || keys[2] != "zeta" {
		t.Fatalf("Keys = %v", keys)
	}
}

// Property: any doc built from string keys/values survives a
// serialize/parse round trip with identical canonical form.
func TestQuickRoundTrip(t *testing.T) {
	f := func(keys []string, vals []int64) bool {
		d := New()
		for i, k := range keys {
			if i < len(vals) {
				d.Set(k, vals[i])
			} else {
				d.Set(k, "s")
			}
		}
		parsed, err := Parse(d.String())
		if err != nil {
			return false
		}
		return parsed.String() == d.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSizePositiveAndMonotone(t *testing.T) {
	d := New()
	base := d.Size()
	d.Set("key", "value")
	if d.Size() <= base {
		t.Fatalf("Size did not grow: %d -> %d", base, d.Size())
	}
	d.Set("n", int64(-1234))
	d.Set("f", 1.5)
	d.Set("arr", []any{1, 2, 3})
	d.Set("b", true)
	if d.Size() <= 0 {
		t.Fatal("Size must stay positive")
	}
}
