package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"sqlgraph/internal/rel"
)

// TableSpec configures which statistics are maintained for one table.
// Row counts and per-column NonNull/NonNeg counters are always kept
// (they are O(1) per mutation); NDV sketches and per-group stats are
// opt-in per ordinal because they hash values on the write path.
type TableSpec struct {
	Name     string
	NDVCols  []int // ordinals given deletion-capable NDV sketches
	HistCols []int // ordinals given equi-height histograms at rebuild
	GroupCol int   // ordinal whose value partitions the per-group stats; -1 disables
	// GroupNDVCols are ordinals given a per-group NDV sketch (e.g. the
	// distinct sources and targets per edge label).
	GroupNDVCols []int
}

// Config lists the tables a Collection tracks. Mutations to untracked
// tables are ignored by the observer.
type Config struct {
	Tables []TableSpec
}

// ColumnStats holds one column's incrementally maintained counters plus
// the rebuild-only histogram. NonNeg counts rows whose value is an
// integer >= 0 — the soft-delete liveness guard (`VID >= 0`) divides
// tables exactly along that line.
type ColumnStats struct {
	NonNull int64
	NonNeg  int64
	Sketch  *Sketch    // nil unless the ordinal is in NDVCols
	Hist    *Histogram // rebuild-only; nil until first rebuild
}

// GroupStats holds the per-group (per edge label) counters.
type GroupStats struct {
	Count int64
	NDV   map[int]*Sketch // keyed by ordinal, from GroupNDVCols
}

// TableStats is one table's statistics. Rows, NonNull, NonNeg, group
// counts and sketch cell arrays are invariant-exact: incremental
// maintenance reproduces a from-scratch rebuild bit for bit. Histograms
// are refreshed only by Rebuild.
type TableStats struct {
	Spec   TableSpec
	Rows   int64
	Cols   []ColumnStats
	Groups map[string]*GroupStats
	AsOf   rel.Version // last version observed or rebuilt at
}

func newTableStats(spec TableSpec, arity int) *TableStats {
	ts := &TableStats{Spec: spec, Cols: make([]ColumnStats, arity)}
	for _, o := range spec.NDVCols {
		if o >= 0 && o < arity {
			ts.Cols[o].Sketch = NewSketch()
		}
	}
	if spec.GroupCol >= 0 {
		ts.Groups = map[string]*GroupStats{}
	}
	return ts
}

// apply folds one row into (delta=+1) or out of (delta=-1) the counters.
func (ts *TableStats) apply(vals []rel.Value, delta int64) {
	ts.Rows += delta
	for i := range ts.Cols {
		if i >= len(vals) {
			break
		}
		v := vals[i]
		if v.IsNull() {
			continue
		}
		ts.Cols[i].NonNull += delta
		if v.Kind() == rel.KindInt && v.Int() >= 0 {
			ts.Cols[i].NonNeg += delta
		}
		if sk := ts.Cols[i].Sketch; sk != nil {
			if delta > 0 {
				sk.Add(v.Key())
			} else {
				sk.Remove(v.Key())
			}
		}
	}
	if ts.Spec.GroupCol >= 0 && ts.Spec.GroupCol < len(vals) && !vals[ts.Spec.GroupCol].IsNull() {
		key := vals[ts.Spec.GroupCol].Key()
		g := ts.Groups[key]
		if g == nil {
			g = &GroupStats{NDV: map[int]*Sketch{}}
			for _, o := range ts.Spec.GroupNDVCols {
				g.NDV[o] = NewSketch()
			}
			ts.Groups[key] = g
		}
		g.Count += delta
		for _, o := range ts.Spec.GroupNDVCols {
			if o < 0 || o >= len(vals) || vals[o].IsNull() {
				continue
			}
			if delta > 0 {
				g.NDV[o].Add(vals[o].Key())
			} else {
				g.NDV[o].Remove(vals[o].Key())
			}
		}
	}
}

// Collection maintains statistics for one catalog. It implements
// rel.ChangeObserver; ObserveCommit runs inside Commit under the table
// write locks, so per-mutation work is a few counter bumps and (for
// configured ordinals) one hash each.
type Collection struct {
	mu      sync.RWMutex
	cat     *rel.Catalog
	tables  map[string]*TableStats
	version atomic.Uint64 // bumped on every commit and rebuild swap
}

// NewCollection builds an empty collection for cat. The caller attaches
// it with cat.SetChangeObserver(c) once the initial Rebuild is done
// (attach-then-rebuild also works; rebuild swaps are serialized with
// observed commits by the table locks).
func NewCollection(cat *rel.Catalog, cfg Config) *Collection {
	c := &Collection{cat: cat, tables: map[string]*TableStats{}}
	for _, spec := range cfg.Tables {
		if spec.GroupCol == 0 && len(spec.GroupNDVCols) == 0 {
			spec.GroupCol = -1 // zero-value spec convenience: no grouping
		}
		arity := 0
		if t, ok := cat.Table(spec.Name); ok {
			arity = t.Schema().Len()
		}
		c.tables[spec.Name] = newTableStats(spec, arity)
	}
	return c
}

// ObserveCommit implements rel.ChangeObserver.
func (c *Collection) ObserveCommit(ver rel.Version, changes []rel.Change) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, ch := range changes {
		ts, ok := c.tables[ch.Table]
		if !ok {
			continue
		}
		switch ch.Kind {
		case rel.ChangeInsert:
			ts.apply(ch.New, +1)
		case rel.ChangeDelete:
			ts.apply(ch.Old, -1)
		case rel.ChangeUpdate:
			ts.apply(ch.Old, -1)
			ts.apply(ch.New, +1)
		}
		ts.AsOf = ver
	}
	c.version.Add(1)
}

// StatsVersion returns a counter that advances whenever any tracked
// statistic may have changed (observed commits and rebuild swaps). The
// engine's plan cache uses it as its invalidation stamp.
func (c *Collection) StatsVersion() uint64 { return c.version.Load() }

// Rebuild recomputes one table's statistics from a scan and swaps them
// in. The scan runs inside a read transaction (holding the table read
// lock), so no writer can commit between the scan and the swap: the
// fresh stats are exact at the swap point and incremental maintenance
// continues from them.
func (c *Collection) Rebuild(name string) error {
	c.mu.RLock()
	old, ok := c.tables[name]
	c.mu.RUnlock()
	if !ok {
		return fmt.Errorf("stats: table %s not tracked", name)
	}
	tx, err := c.cat.Begin(nil, []string{name})
	if err != nil {
		return err
	}
	defer tx.Rollback()
	t, _ := c.cat.Table(name)
	fresh := newTableStats(old.Spec, t.Schema().Len())
	histVals := map[int][]rel.Value{}
	for _, o := range old.Spec.HistCols {
		histVals[o] = nil
	}
	err = tx.Scan(name, func(rid rel.RowID, vals []rel.Value) bool {
		fresh.apply(vals, +1)
		for o := range histVals {
			if o < len(vals) && !vals[o].IsNull() {
				histVals[o] = append(histVals[o], vals[o])
			}
		}
		return true
	})
	if err != nil {
		return err
	}
	for o, vs := range histVals {
		if o < len(fresh.Cols) {
			fresh.Cols[o].Hist = buildHistogram(vs)
		}
	}
	fresh.AsOf = c.cat.CurrentVersion()
	c.mu.Lock()
	c.tables[name] = fresh
	c.mu.Unlock()
	c.version.Add(1)
	return nil
}

// RebuildAll rebuilds every tracked table (used at load, checkpoint,
// and crash recovery, where bulk row movement bypassed the observer).
func (c *Collection) RebuildAll() error {
	c.mu.RLock()
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	c.mu.RUnlock()
	sort.Strings(names)
	for _, n := range names {
		if err := c.Rebuild(n); err != nil {
			return err
		}
	}
	return nil
}

// ---- provider methods (the engine's StatsProvider interface) ----

// TableRows returns the tracked row count.
func (c *Collection) TableRows(table string) (int64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ts, ok := c.tables[table]
	if !ok {
		return 0, false
	}
	return ts.Rows, true
}

// ColumnNDV estimates the number of distinct non-null values in a
// column; ok is false when no sketch is configured for the ordinal.
func (c *Collection) ColumnNDV(table string, col int) (float64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ts, ok := c.tables[table]
	if !ok || col < 0 || col >= len(ts.Cols) || ts.Cols[col].Sketch == nil {
		return 0, false
	}
	return ts.Cols[col].Sketch.NDV(), true
}

// FracNonNull returns the fraction of rows with a non-null value.
func (c *Collection) FracNonNull(table string, col int) (float64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ts, ok := c.tables[table]
	if !ok || ts.Rows <= 0 || col < 0 || col >= len(ts.Cols) {
		return 0, false
	}
	return float64(ts.Cols[col].NonNull) / float64(ts.Rows), true
}

// FracNonNeg returns the fraction of rows whose value is an integer
// >= 0 — the exact selectivity of the soft-delete guard `col >= 0`.
func (c *Collection) FracNonNeg(table string, col int) (float64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ts, ok := c.tables[table]
	if !ok || ts.Rows <= 0 || col < 0 || col >= len(ts.Cols) {
		return 0, false
	}
	return float64(ts.Cols[col].NonNeg) / float64(ts.Rows), true
}

// SelEq estimates the selectivity of `col = v` as 1/NDV.
func (c *Collection) SelEq(table string, col int, v rel.Value) (float64, bool) {
	ndv, ok := c.ColumnNDV(table, col)
	if !ok || ndv < 1 {
		return 0, false
	}
	return 1 / ndv, true
}

// SelRange estimates the fraction of rows in [lo, hi] (nil = open) from
// the column's histogram.
func (c *Collection) SelRange(table string, col int, lo, hi *rel.Value) (float64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ts, ok := c.tables[table]
	if !ok || col < 0 || col >= len(ts.Cols) || ts.Cols[col].Hist == nil {
		return 0, false
	}
	return ts.Cols[col].Hist.FracBetween(lo, hi), true
}

// GroupCount returns the row count of one group (edges with one label).
func (c *Collection) GroupCount(table string, group rel.Value) (int64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ts, ok := c.tables[table]
	if !ok || ts.Groups == nil {
		return 0, false
	}
	g, ok := ts.Groups[group.Key()]
	if !ok || g.Count <= 0 {
		return 0, true // known zero: the label does not exist
	}
	return g.Count, true
}

// GroupColumn returns the ordinal of the table's group column (-1 when
// the table is untracked or has no group column).
func (c *Collection) GroupColumn(table string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ts, ok := c.tables[table]
	if !ok {
		return -1
	}
	return ts.Spec.GroupCol
}

// GroupNDV estimates the distinct values of col within one group (e.g.
// distinct sources among edges with one label).
func (c *Collection) GroupNDV(table string, group rel.Value, col int) (float64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ts, ok := c.tables[table]
	if !ok || ts.Groups == nil {
		return 0, false
	}
	g, ok := ts.Groups[group.Key()]
	if !ok || g.Count <= 0 {
		return 0, true
	}
	sk := g.NDV[col]
	if sk == nil {
		return 0, false
	}
	return sk.NDV(), true
}

// Groups returns the group keys of a table with live rows, sorted.
func (c *Collection) GroupKeys(table string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ts, ok := c.tables[table]
	if !ok || ts.Groups == nil {
		return nil
	}
	keys := make([]string, 0, len(ts.Groups))
	for k, g := range ts.Groups {
		if g.Count > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// ---- inspection (server /stats, CLI, tests) ----

// ColDescription is one column's stats in a JSON-friendly shape.
type ColDescription struct {
	Ordinal int     `json:"ordinal"`
	NonNull int64   `json:"non_null"`
	NonNeg  int64   `json:"non_neg"`
	NDV     float64 `json:"ndv,omitempty"`
	HistMin string  `json:"hist_min,omitempty"`
	HistMax string  `json:"hist_max,omitempty"`
}

// GroupDescription is one group's stats.
type GroupDescription struct {
	Key   string             `json:"key"`
	Count int64              `json:"count"`
	NDV   map[string]float64 `json:"ndv,omitempty"` // "col<ordinal>" -> estimate
}

// TableDescription is one table's stats.
type TableDescription struct {
	Table  string             `json:"table"`
	Rows   int64              `json:"rows"`
	AsOf   uint64             `json:"as_of_version"`
	Cols   []ColDescription   `json:"cols,omitempty"`
	Groups []GroupDescription `json:"groups,omitempty"`
}

// Describe snapshots every tracked table, sorted by name. maxGroups
// bounds the per-table group listing (largest first; 0 = all).
func (c *Collection) Describe(maxGroups int) []TableDescription {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]TableDescription, 0, len(names))
	for _, n := range names {
		ts := c.tables[n]
		d := TableDescription{Table: n, Rows: ts.Rows, AsOf: uint64(ts.AsOf)}
		for i := range ts.Cols {
			col := &ts.Cols[i]
			if col.NonNull == 0 && col.Sketch == nil && col.Hist == nil {
				continue
			}
			cd := ColDescription{Ordinal: i, NonNull: col.NonNull, NonNeg: col.NonNeg}
			if col.Sketch != nil {
				cd.NDV = col.Sketch.NDV()
			}
			if col.Hist != nil {
				cd.HistMin = col.Hist.Min.String()
				cd.HistMax = col.Hist.Max.String()
			}
			d.Cols = append(d.Cols, cd)
		}
		for _, key := range sortedGroupsByCount(ts.Groups) {
			g := ts.Groups[key]
			gd := GroupDescription{Key: key, Count: g.Count}
			if len(g.NDV) > 0 {
				gd.NDV = map[string]float64{}
				for o, sk := range g.NDV {
					gd.NDV[fmt.Sprintf("col%d", o)] = sk.NDV()
				}
			}
			d.Groups = append(d.Groups, gd)
			if maxGroups > 0 && len(d.Groups) >= maxGroups {
				break
			}
		}
		out = append(out, d)
	}
	return out
}

func sortedGroupsByCount(groups map[string]*GroupStats) []string {
	keys := make([]string, 0, len(groups))
	for k, g := range groups {
		if g.Count > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if groups[keys[i]].Count != groups[keys[j]].Count {
			return groups[keys[i]].Count > groups[keys[j]].Count
		}
		return keys[i] < keys[j]
	})
	return keys
}

// Fingerprint renders the invariant-exact state of one table — row
// count, per-column counters, sketch cell arrays, and per-group
// counters (groups with zero live rows are skipped, since a rebuild
// never learns about them) — as a deterministic string. The invariant
// tests compare fingerprints of incrementally maintained stats against
// a from-scratch rebuild; histograms are excluded by design.
func (c *Collection) Fingerprint(table string) string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ts, ok := c.tables[table]
	if !ok {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "rows=%d\n", ts.Rows)
	for i := range ts.Cols {
		col := &ts.Cols[i]
		fmt.Fprintf(&b, "col%d nonnull=%d nonneg=%d", i, col.NonNull, col.NonNeg)
		if col.Sketch != nil {
			fmt.Fprintf(&b, " sketch=%x", cellsDigest(col.Sketch))
		}
		b.WriteByte('\n')
	}
	for _, key := range sortedGroupKeys(ts.Groups) {
		g := ts.Groups[key]
		if g.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "group %q count=%d", key, g.Count)
		ords := make([]int, 0, len(g.NDV))
		for o := range g.NDV {
			ords = append(ords, o)
		}
		sort.Ints(ords)
		for _, o := range ords {
			fmt.Fprintf(&b, " ndv%d=%x", o, cellsDigest(g.NDV[o]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func sortedGroupKeys(groups map[string]*GroupStats) []string {
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// cellsDigest hashes a sketch's refcount array (FNV over the bytes).
func cellsDigest(s *Sketch) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range s.cells {
		for shift := 0; shift < 32; shift += 8 {
			h ^= uint64(uint8(c >> shift))
			h *= 1099511628211
		}
	}
	return h
}

// TableNames returns the tracked table names, sorted.
func (c *Collection) TableNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
