package stats

import (
	"sort"

	"sqlgraph/internal/rel"
)

// histogramBuckets is the number of equi-height buckets built per
// configured column at rebuild time.
const histogramBuckets = 32

// Histogram is an equi-height histogram over the non-null values of one
// column, built only at Rebuild/Checkpoint time (it is not maintained
// incrementally; see DESIGN.md §15 for the invalidation rules). Bounds
// holds ascending bucket upper bounds; every bucket covers Total/len
// rows.
type Histogram struct {
	Bounds []rel.Value
	Total  int64
	Min    rel.Value
	Max    rel.Value
}

// buildHistogram sorts a copy of vals and cuts it into equi-height
// buckets. Returns nil for empty input.
func buildHistogram(vals []rel.Value) *Histogram {
	if len(vals) == 0 {
		return nil
	}
	sorted := make([]rel.Value, len(vals))
	copy(sorted, vals)
	sort.Slice(sorted, func(i, j int) bool { return rel.Compare(sorted[i], sorted[j]) < 0 })
	b := histogramBuckets
	if b > len(sorted) {
		b = len(sorted)
	}
	h := &Histogram{Total: int64(len(sorted)), Min: sorted[0], Max: sorted[len(sorted)-1]}
	for i := 1; i <= b; i++ {
		h.Bounds = append(h.Bounds, sorted[i*len(sorted)/b-1])
	}
	return h
}

// FracLE estimates the fraction of rows with value <= v.
func (h *Histogram) FracLE(v rel.Value) float64 {
	if h == nil || len(h.Bounds) == 0 {
		return 0.5
	}
	if rel.Compare(v, h.Min) < 0 {
		return 0
	}
	if rel.Compare(v, h.Max) >= 0 {
		return 1
	}
	// First bucket whose upper bound is >= v covers v; everything below
	// it is definitely <= v, and we credit half of the covering bucket.
	idx := sort.Search(len(h.Bounds), func(i int) bool { return rel.Compare(h.Bounds[i], v) >= 0 })
	return (float64(idx) + 0.5) / float64(len(h.Bounds))
}

// FracBetween estimates the fraction of rows in [lo, hi]; a nil bound
// leaves that side open.
func (h *Histogram) FracBetween(lo, hi *rel.Value) float64 {
	lower, upper := 0.0, 1.0
	if lo != nil {
		lower = h.FracLE(*lo)
	}
	if hi != nil {
		upper = h.FracLE(*hi)
	}
	f := upper - lower
	if f < 0 {
		f = 0
	}
	return f
}
