// Package stats maintains optimizer statistics over rel catalogs:
// per-table row counts, per-column NDV sketches and null/negative
// fractions, per-group (edge-label) cardinalities, and rebuild-time
// equi-height histograms. Counters are maintained incrementally from
// the catalog's commit observer and are exactly deterministic: applying
// the same multiset of row inserts and deletes in any order yields the
// same counter state as a from-scratch rebuild, which is what the
// invariant tests assert.
package stats

import "math"

// sketchCells is the fixed width of every NDV sketch. 2048 refcounted
// cells estimate distinct counts well past 10^6 with a few percent
// error while keeping the per-column footprint at 8 KiB.
const sketchCells = 2048

// Sketch is a deletion-capable linear-counting distinct sketch: each
// value hashes to one refcounted cell, Remove undoes Add exactly, and
// the estimate is the classic linear-counting formula over occupied
// cells. Because the cell array is a pure function of the multiset of
// (Add - Remove) keys, an incrementally maintained sketch is
// bit-identical to one rebuilt from scratch.
type Sketch struct {
	cells [sketchCells]int32
	n     int64 // live keys (adds minus removes)
	occ   int32 // cells with nonzero refcount
}

// NewSketch returns an empty sketch.
func NewSketch() *Sketch { return &Sketch{} }

func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Add records one occurrence of key.
func (s *Sketch) Add(key string) {
	c := &s.cells[fnv64(key)%sketchCells]
	if *c == 0 {
		s.occ++
	}
	*c++
	s.n++
}

// Remove undoes one Add of key.
func (s *Sketch) Remove(key string) {
	c := &s.cells[fnv64(key)%sketchCells]
	*c--
	if *c == 0 {
		s.occ--
	}
	s.n--
}

// Len returns the live key count (adds minus removes).
func (s *Sketch) Len() int64 { return s.n }

// Empty reports whether no live keys remain.
func (s *Sketch) Empty() bool { return s.n == 0 }

// NDV estimates the number of distinct live keys. Linear counting:
// ndv = m * ln(m / empty cells); saturated sketches degrade to the cell
// count, and the estimate never exceeds the live key count.
func (s *Sketch) NDV() float64 {
	if s.n <= 0 || s.occ <= 0 {
		return 0
	}
	empty := float64(sketchCells - s.occ)
	var est float64
	if empty < 1 {
		est = sketchCells
	} else {
		est = sketchCells * math.Log(sketchCells/empty)
	}
	if est < 1 {
		est = 1
	}
	if est > float64(s.n) {
		est = float64(s.n)
	}
	return est
}

// Cells exposes the raw refcount array for fingerprinting in tests.
func (s *Sketch) Cells() []int32 { return s.cells[:] }
