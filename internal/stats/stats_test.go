package stats

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"sqlgraph/internal/rel"
)

func TestSketchAddRemoveExact(t *testing.T) {
	a, b := NewSketch(), NewSketch()
	rng := rand.New(rand.NewSource(1))
	keys := make([]string, 0, 5000)
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("k%d", rng.Intn(900))
		keys = append(keys, k)
		a.Add(k)
	}
	// b sees the same multiset interleaved with extra add/remove pairs.
	for i, k := range keys {
		b.Add(k)
		if i%3 == 0 {
			extra := fmt.Sprintf("x%d", i)
			b.Add(extra)
			b.Remove(extra)
		}
	}
	if a.Len() != b.Len() {
		t.Fatalf("len mismatch: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.cells {
		if a.cells[i] != b.cells[i] {
			t.Fatalf("cell %d mismatch: %d vs %d", i, a.cells[i], b.cells[i])
		}
	}
	// Removing everything empties the sketch exactly.
	for _, k := range keys {
		a.Remove(k)
	}
	if !a.Empty() || a.NDV() != 0 {
		t.Fatalf("sketch not empty after removing all keys: n=%d ndv=%v", a.n, a.NDV())
	}
	for i := range a.cells {
		if a.cells[i] != 0 {
			t.Fatalf("cell %d nonzero after full removal", i)
		}
	}
}

func TestSketchNDVAccuracy(t *testing.T) {
	for _, distinct := range []int{1, 10, 100, 1000, 5000} {
		s := NewSketch()
		for i := 0; i < distinct; i++ {
			k := fmt.Sprintf("key-%d", i)
			s.Add(k)
			s.Add(k) // duplicates must not inflate the estimate
		}
		est := s.NDV()
		relErr := math.Abs(est-float64(distinct)) / float64(distinct)
		if distinct <= 100 && relErr > 0.05 {
			t.Errorf("distinct=%d est=%.1f relerr=%.3f", distinct, est, relErr)
		}
		if relErr > 0.25 {
			t.Errorf("distinct=%d est=%.1f relerr=%.3f exceeds 25%%", distinct, est, relErr)
		}
	}
}

func TestHistogramFracLE(t *testing.T) {
	var vals []rel.Value
	for i := 0; i < 1000; i++ {
		vals = append(vals, rel.NewInt(int64(i)))
	}
	h := buildHistogram(vals)
	if h.Total != 1000 {
		t.Fatalf("total = %d", h.Total)
	}
	if got := h.FracLE(rel.NewInt(-5)); got != 0 {
		t.Errorf("FracLE(-5) = %v", got)
	}
	if got := h.FracLE(rel.NewInt(5000)); got != 1 {
		t.Errorf("FracLE(5000) = %v", got)
	}
	mid := h.FracLE(rel.NewInt(500))
	if mid < 0.4 || mid > 0.6 {
		t.Errorf("FracLE(500) = %v, want ~0.5", mid)
	}
	lo, hi := rel.NewInt(250), rel.NewInt(750)
	if f := h.FracBetween(&lo, &hi); f < 0.35 || f > 0.65 {
		t.Errorf("FracBetween(250,750) = %v, want ~0.5", f)
	}
}

func newTestCatalog(t *testing.T) *rel.Catalog {
	t.Helper()
	cat := rel.NewCatalog()
	if _, err := cat.CreateTable("T", rel.NewSchema(
		rel.Column{Name: "ID", Type: rel.KindInt},
		rel.Column{Name: "LBL", Type: rel.KindString},
		rel.Column{Name: "VAL", Type: rel.KindInt},
	)); err != nil {
		t.Fatal(err)
	}
	return cat
}

func testConfig() Config {
	return Config{Tables: []TableSpec{{
		Name:         "T",
		NDVCols:      []int{0, 2},
		HistCols:     []int{2},
		GroupCol:     1,
		GroupNDVCols: []int{0},
	}}}
}

func TestCollectionIncrementalMatchesRebuild(t *testing.T) {
	cat := newTestCatalog(t)
	inc := NewCollection(cat, testConfig())
	cat.SetChangeObserver(inc)

	rng := rand.New(rand.NewSource(7))
	var live []rel.RowID
	mutate := func() {
		tx, err := cat.Begin([]string{"T"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer tx.Rollback()
		switch op := rng.Intn(10); {
		case op < 6 || len(live) == 0: // insert
			id := rng.Intn(500)
			var lbl rel.Value
			if rng.Intn(10) == 0 {
				lbl = rel.Value{} // null label: excluded from groups
			} else {
				lbl = rel.NewString(fmt.Sprintf("l%d", rng.Intn(5)))
			}
			rid, err := tx.Insert("T", []rel.Value{rel.NewInt(int64(id)), lbl, rel.NewInt(int64(rng.Intn(50) - 25))})
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, rid)
		case op < 8: // delete
			i := rng.Intn(len(live))
			if _, err := tx.Delete("T", live[i]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:i], live[i+1:]...)
		default: // update
			i := rng.Intn(len(live))
			err := tx.Update("T", live[i], []rel.Value{
				rel.NewInt(int64(rng.Intn(500))),
				rel.NewString(fmt.Sprintf("l%d", rng.Intn(5))),
				rel.NewInt(int64(rng.Intn(50) - 25)),
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		tx.Commit()
	}
	for i := 0; i < 2000; i++ {
		mutate()
	}

	// A second collection rebuilt from scratch must fingerprint
	// identically on the invariant-exact state.
	scratch := NewCollection(cat, testConfig())
	if err := scratch.RebuildAll(); err != nil {
		t.Fatal(err)
	}
	if got, want := inc.Fingerprint("T"), scratch.Fingerprint("T"); got != want {
		t.Fatalf("incremental fingerprint diverged from rebuild:\nincremental:\n%s\nrebuild:\n%s", got, want)
	}

	rows, ok := inc.TableRows("T")
	if !ok || rows != int64(len(live)) {
		t.Fatalf("TableRows = %d, %v; want %d", rows, ok, len(live))
	}
}

func TestCollectionRolledBackTxnInvisible(t *testing.T) {
	cat := newTestCatalog(t)
	c := NewCollection(cat, testConfig())
	cat.SetChangeObserver(c)

	tx, _ := cat.Begin([]string{"T"}, nil)
	if _, err := tx.Insert("T", []rel.Value{rel.NewInt(1), rel.NewString("a"), rel.NewInt(2)}); err != nil {
		t.Fatal(err)
	}
	tx.Rollback()
	if rows, _ := c.TableRows("T"); rows != 0 {
		t.Fatalf("rolled-back insert leaked into stats: rows=%d", rows)
	}

	tx, _ = cat.Begin([]string{"T"}, nil)
	if _, err := tx.Insert("T", []rel.Value{rel.NewInt(1), rel.NewString("a"), rel.NewInt(2)}); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	if rows, _ := c.TableRows("T"); rows != 1 {
		t.Fatalf("committed insert missing: rows=%d", rows)
	}
	if n, ok := c.GroupCount("T", rel.NewString("a")); !ok || n != 1 {
		t.Fatalf("GroupCount(a) = %d, %v", n, ok)
	}
	if n, ok := c.GroupCount("T", rel.NewString("missing")); !ok || n != 0 {
		t.Fatalf("GroupCount(missing) = %d, %v; want known zero", n, ok)
	}
}

func TestDescribeAndProviders(t *testing.T) {
	cat := newTestCatalog(t)
	c := NewCollection(cat, testConfig())
	cat.SetChangeObserver(c)
	tx, _ := cat.Begin([]string{"T"}, nil)
	for i := 0; i < 100; i++ {
		lbl := "hot"
		if i%10 == 0 {
			lbl = "cold"
		}
		if _, err := tx.Insert("T", []rel.Value{rel.NewInt(int64(i)), rel.NewString(lbl), rel.NewInt(int64(i % 7))}); err != nil {
			t.Fatal(err)
		}
	}
	tx.Commit()
	if err := c.RebuildAll(); err != nil {
		t.Fatal(err)
	}

	if f, ok := c.FracNonNeg("T", 0); !ok || f != 1 {
		t.Errorf("FracNonNeg = %v, %v", f, ok)
	}
	if f, ok := c.FracNonNull("T", 1); !ok || f != 1 {
		t.Errorf("FracNonNull = %v, %v", f, ok)
	}
	if ndv, ok := c.ColumnNDV("T", 2); !ok || math.Abs(ndv-7) > 1 {
		t.Errorf("ColumnNDV(VAL) = %v, %v; want ~7", ndv, ok)
	}
	if _, ok := c.ColumnNDV("T", 1); ok {
		t.Error("ColumnNDV on unsketched ordinal should report !ok")
	}
	if sel, ok := c.SelEq("T", 2, rel.NewInt(3)); !ok || sel < 0.1 || sel > 0.2 {
		t.Errorf("SelEq = %v, %v; want ~1/7", sel, ok)
	}
	lo, hi := rel.NewInt(0), rel.NewInt(3)
	if sel, ok := c.SelRange("T", 2, &lo, &hi); !ok || sel <= 0 || sel > 1 {
		t.Errorf("SelRange = %v, %v", sel, ok)
	}
	if n, ok := c.GroupCount("T", rel.NewString("hot")); !ok || n != 90 {
		t.Errorf("GroupCount(hot) = %d, %v", n, ok)
	}
	if ndv, ok := c.GroupNDV("T", rel.NewString("cold"), 0); !ok || math.Abs(ndv-10) > 1.5 {
		t.Errorf("GroupNDV(cold, ID) = %v, %v; want ~10", ndv, ok)
	}

	ds := c.Describe(0)
	if len(ds) != 1 || ds[0].Table != "T" || ds[0].Rows != 100 {
		t.Fatalf("Describe = %+v", ds)
	}
	if len(ds[0].Groups) != 2 || ds[0].Groups[0].Count < ds[0].Groups[1].Count {
		t.Fatalf("groups not sorted by count: %+v", ds[0].Groups)
	}
	if got := c.Describe(1); len(got[0].Groups) != 1 {
		t.Fatalf("maxGroups not honored: %+v", got[0].Groups)
	}
}
