package trace

import (
	"math/rand/v2"
	"strings"
)

const hexDigits = "0123456789abcdef"

func appendHex64(dst []byte, v uint64) []byte {
	for shift := 60; shift >= 0; shift -= 4 {
		dst = append(dst, hexDigits[(v>>uint(shift))&0xF])
	}
	return dst
}

// NewID mints a 128-bit lowercase-hex trace id (the W3C trace-id shape).
func NewID() string {
	buf := make([]byte, 0, 32)
	buf = appendHex64(buf, rand.Uint64())
	buf = appendHex64(buf, rand.Uint64())
	return string(buf)
}

// newSpanID mints a 64-bit lowercase-hex parent-id for traceparent.
func newSpanID() string {
	return string(appendHex64(make([]byte, 0, 16), rand.Uint64()))
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// ParseTraceparent extracts the trace-id from a W3C traceparent header
// ("00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>"). It returns
// "" when the header is absent or malformed, or when the trace-id is
// all zeros (which the spec forbids).
func ParseTraceparent(h string) string {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) != 4 {
		return ""
	}
	ver, id, parent, flags := parts[0], parts[1], parts[2], parts[3]
	if len(ver) != 2 || len(id) != 32 || len(parent) != 16 || len(flags) != 2 {
		return ""
	}
	if !isHex(ver) || !isHex(id) || !isHex(parent) || !isHex(flags) {
		return ""
	}
	if ver == "ff" || id == strings.Repeat("0", 32) {
		return ""
	}
	return id
}

// Traceparent formats a W3C traceparent header carrying the given
// trace-id with a fresh parent-id and the sampled flag set.
func Traceparent(traceID string) string {
	return "00-" + traceID + "-" + newSpanID() + "-01"
}
