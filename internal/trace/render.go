package trace

import (
	"fmt"
	"strings"
	"time"
)

// Text renders the trace as an indented plan tree — the EXPLAIN ANALYZE
// pretty form shared by the server and the CLI's -explain flag.
func (t *Trace) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s %s", t.ID, t.Kind)
	if t.Name != "" {
		fmt.Fprintf(&b, " %q", t.Name)
	}
	fmt.Fprintf(&b, " total=%s", fmtDur(t.DurNs))
	if t.Err != "" {
		fmt.Fprintf(&b, " error=%q", t.Err)
	}
	b.WriteByte('\n')
	if t.SQL != "" {
		fmt.Fprintf(&b, "sql: %s\n", t.SQL)
	}
	if t.Root != nil {
		for _, c := range t.Root.Children {
			writeSpan(&b, c, 0)
		}
	}
	return b.String()
}

func writeSpan(b *strings.Builder, sp *Span, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	b.WriteString(sp.Name)
	if sp.Detail != "" {
		fmt.Fprintf(b, " [%s]", sp.Detail)
	}
	if sp.RowsIn != 0 || sp.RowsOut != 0 {
		fmt.Fprintf(b, " rows=%d/%d", sp.RowsIn, sp.RowsOut)
	}
	fmt.Fprintf(b, " time=%s\n", fmtDur(sp.DurNs))
	for _, c := range sp.Children {
		writeSpan(b, c, depth+1)
	}
}

// fmtDur renders nanoseconds rounded to the microsecond, so rendered
// trees stay aligned and goldens normalize with one regexp.
func fmtDur(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}
