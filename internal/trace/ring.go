package trace

import (
	"log/slog"
	"sort"
	"sync/atomic"
	"time"
)

// Ring is a lock-free bounded buffer of finished traces: writers claim a
// slot with one atomic add and publish with one atomic pointer store, so
// recording never contends with readers or other writers. The sequence
// number lives in the slot entry, not the trace, so one trace can sit in
// several rings (recent + slow) without Add mutating shared state.
type Ring struct {
	slots []atomic.Pointer[ringEntry]
	seq   atomic.Uint64
}

type ringEntry struct {
	seq uint64
	t   *Trace
}

// NewRing creates a ring retaining the last n traces.
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{slots: make([]atomic.Pointer[ringEntry], n)}
}

// Add publishes a finished trace, evicting the oldest when full. The
// trace must not be mutated after Add.
func (r *Ring) Add(t *Trace) {
	seq := r.seq.Add(1)
	r.slots[(seq-1)%uint64(len(r.slots))].Store(&ringEntry{seq: seq, t: t})
}

// Snapshot returns the retained traces, newest first. Concurrent Adds
// may or may not be observed; every returned trace is fully published.
func (r *Ring) Snapshot() []*Trace {
	entries := make([]*ringEntry, 0, len(r.slots))
	for i := range r.slots {
		if e := r.slots[i].Load(); e != nil {
			entries = append(entries, e)
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq > entries[j].seq })
	out := make([]*Trace, len(entries))
	for i, e := range entries {
		out[i] = e.t
	}
	return out
}

// Get returns the newest retained trace with the given id, or nil.
func (r *Ring) Get(id string) *Trace {
	var best *ringEntry
	for i := range r.slots {
		if e := r.slots[i].Load(); e != nil && e.t.ID == id {
			if best == nil || e.seq > best.seq {
				best = e
			}
		}
	}
	if best == nil {
		return nil
	}
	return best.t
}

// DefaultSlowThreshold is the slow-query threshold when none is set.
const DefaultSlowThreshold = 250 * time.Millisecond

// DefaultRingSize is the per-kind trace retention when none is set.
const DefaultRingSize = 128

// Recorder retains recent traces per kind plus a slow log, and keeps the
// write-path counters (WAL appends, fsyncs, checkpoints, vacuums) the
// metrics endpoint exposes. All methods are safe for concurrent use. The
// rings sit behind atomic pointers so retention can be resized after
// construction (SetRingSize) without locking the record path.
type Recorder struct {
	queries atomic.Pointer[Ring]
	writes  atomic.Pointer[Ring]
	slow    atomic.Pointer[Ring]

	slowNs    atomic.Int64
	slowCount atomic.Uint64
	logger    atomic.Pointer[slog.Logger]
	slowObs   atomic.Pointer[func(*Trace)]

	walAppends    atomic.Uint64
	walAppendNs   atomic.Int64
	walFsyncs     atomic.Uint64
	walFsyncNs    atomic.Int64
	walFsyncLat   [len(FsyncLatencyBuckets) + 1]atomic.Uint64
	walFlushRecs  atomic.Uint64
	walFlushSizes [len(FlushBatchBuckets) + 1]atomic.Uint64
	checkpoints   atomic.Uint64
	checkpointNs  atomic.Int64
	vacuums       atomic.Uint64
	vacuumNs      atomic.Int64
}

// FlushBatchBuckets are the upper bounds (inclusive) of the
// records-per-fsync histogram; flushes larger than the last bound land in
// a +Inf overflow bucket. Exported so /metrics renders matching `le`
// labels.
var FlushBatchBuckets = [...]uint64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// FsyncLatencyBuckets are the upper bounds (inclusive, in seconds) of the
// group-commit flush-latency histogram; slower fsyncs land in a +Inf
// overflow bucket. Exported so /metrics renders matching `le` labels.
var FsyncLatencyBuckets = [...]float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25}

// NewRecorder creates a recorder retaining n traces per kind (0 = the
// default) with the given slow threshold (0 = the default, negative =
// slow logging disabled).
func NewRecorder(n int, slowThreshold time.Duration) *Recorder {
	r := &Recorder{}
	r.SetRingSize(n)
	r.SetSlowThreshold(slowThreshold)
	return r
}

// SetRingSize replaces the trace rings with fresh ones retaining n
// traces per kind (0 restores the default). Previously retained traces
// are discarded; in-flight Records land in whichever generation of ring
// they loaded, so nothing blocks and nothing tears.
func (r *Recorder) SetRingSize(n int) {
	if n <= 0 {
		n = DefaultRingSize
	}
	r.queries.Store(NewRing(n))
	r.writes.Store(NewRing(n))
	r.slow.Store(NewRing(n))
}

// SetSlowThreshold changes the slow-trace threshold (0 restores the
// default, negative disables slow capture).
func (r *Recorder) SetSlowThreshold(d time.Duration) {
	if d == 0 {
		d = DefaultSlowThreshold
	}
	r.slowNs.Store(d.Nanoseconds())
}

// SlowThreshold reports the active threshold (negative = disabled).
func (r *Recorder) SlowThreshold() time.Duration {
	return time.Duration(r.slowNs.Load())
}

// SetLogger attaches a structured logger for slow-trace log lines.
func (r *Recorder) SetLogger(l *slog.Logger) { r.logger.Store(l) }

// SetSlowObserver installs a hook invoked (synchronously, after ring
// publication) for every trace crossing the slow threshold. Used to feed
// slow queries into the lifecycle event journal. Pass nil to clear.
func (r *Recorder) SetSlowObserver(fn func(*Trace)) {
	if fn == nil {
		r.slowObs.Store(nil)
		return
	}
	r.slowObs.Store(&fn)
}

// Record publishes a finished trace: queries and writes land in their
// rings; anything over the slow threshold is additionally retained in
// the slow ring, counted, and logged. The Slow flag is set before the
// trace is published to any ring, so readers never observe a mutation.
func (r *Recorder) Record(t *Trace) {
	if t == nil {
		return
	}
	slow := false
	if thresh := r.slowNs.Load(); thresh >= 0 && t.DurNs >= thresh {
		t.Slow = true
		slow = true
	}
	if t.Kind == "write" {
		r.writes.Load().Add(t)
	} else {
		r.queries.Load().Add(t)
	}
	if slow {
		r.slow.Load().Add(t)
		r.slowCount.Add(1)
		if l := r.logger.Load(); l != nil {
			l.Warn("slow "+t.Kind,
				slog.String("trace_id", t.ID),
				slog.String("name", t.Name),
				slog.Duration("dur", t.Duration()),
				slog.String("error", t.Err))
		}
		if obs := r.slowObs.Load(); obs != nil {
			(*obs)(t)
		}
	}
}

// Queries returns the retained query traces, newest first.
func (r *Recorder) Queries() []*Trace { return r.queries.Load().Snapshot() }

// Writes returns the retained write traces, newest first.
func (r *Recorder) Writes() []*Trace { return r.writes.Load().Snapshot() }

// Slow returns the retained slow traces, newest first.
func (r *Recorder) Slow() []*Trace { return r.slow.Load().Snapshot() }

// SlowCount reports how many traces crossed the slow threshold.
func (r *Recorder) SlowCount() uint64 { return r.slowCount.Load() }

// Get finds a retained trace by id (queries, then writes, then slow).
func (r *Recorder) Get(id string) *Trace {
	if t := r.queries.Load().Get(id); t != nil {
		return t
	}
	if t := r.writes.Load().Get(id); t != nil {
		return t
	}
	return r.slow.Load().Get(id)
}

// ObserveWALAppend charges one WAL buffer append.
func (r *Recorder) ObserveWALAppend(d time.Duration) {
	r.walAppends.Add(1)
	r.walAppendNs.Add(d.Nanoseconds())
}

// ObserveWALFsync charges one group-commit flush+fsync, bucketing its
// latency into the FsyncLatencyBuckets histogram.
func (r *Recorder) ObserveWALFsync(d time.Duration) {
	r.walFsyncs.Add(1)
	r.walFsyncNs.Add(d.Nanoseconds())
	sec := d.Seconds()
	i := 0
	for i < len(FsyncLatencyBuckets) && sec > FsyncLatencyBuckets[i] {
		i++
	}
	r.walFsyncLat[i].Add(1)
}

// ObserveWALFlush records how many records one physical flush+fsync
// covered (the group-commit batch size).
func (r *Recorder) ObserveWALFlush(records int) {
	if records <= 0 {
		return
	}
	r.walFlushRecs.Add(uint64(records))
	i := 0
	for i < len(FlushBatchBuckets) && uint64(records) > FlushBatchBuckets[i] {
		i++
	}
	r.walFlushSizes[i].Add(1)
}

// ObserveCheckpoint charges one checkpoint (snapshot dump + log reset).
func (r *Recorder) ObserveCheckpoint(d time.Duration) {
	r.checkpoints.Add(1)
	r.checkpointNs.Add(d.Nanoseconds())
}

// ObserveVacuum charges one vacuum pass.
func (r *Recorder) ObserveVacuum(d time.Duration) {
	r.vacuums.Add(1)
	r.vacuumNs.Add(d.Nanoseconds())
}

// WriteStats is a snapshot of the write-path counters.
type WriteStats struct {
	WALAppends  uint64
	WALAppendNs int64
	WALFsyncs   uint64
	WALFsyncNs  int64
	// WALFsyncLatencies counts fsyncs per latency bucket: index i counts
	// flushes completing within FsyncLatencyBuckets[i] seconds, the final
	// index anything slower (+Inf).
	WALFsyncLatencies [len(FsyncLatencyBuckets) + 1]uint64
	// WALFlushRecords is the total records covered by all fsyncs;
	// WALFlushRecords/WALFsyncs is the mean group-commit batch size.
	WALFlushRecords uint64
	// WALFlushSizes counts flushes per batch-size bucket: index i counts
	// flushes of at most FlushBatchBuckets[i] records, the final index
	// anything larger (+Inf).
	WALFlushSizes [len(FlushBatchBuckets) + 1]uint64
	Checkpoints   uint64
	CheckpointNs  int64
	Vacuums       uint64
	VacuumNs      int64
}

// WriteStats returns the current write-path counters.
func (r *Recorder) WriteStats() WriteStats {
	st := WriteStats{
		WALAppends:      r.walAppends.Load(),
		WALAppendNs:     r.walAppendNs.Load(),
		WALFsyncs:       r.walFsyncs.Load(),
		WALFsyncNs:      r.walFsyncNs.Load(),
		WALFlushRecords: r.walFlushRecs.Load(),
		Checkpoints:     r.checkpoints.Load(),
		CheckpointNs:    r.checkpointNs.Load(),
		Vacuums:         r.vacuums.Load(),
		VacuumNs:        r.vacuumNs.Load(),
	}
	for i := range r.walFlushSizes {
		st.WALFlushSizes[i] = r.walFlushSizes[i].Load()
	}
	for i := range r.walFsyncLat {
		st.WALFsyncLatencies[i] = r.walFsyncLat[i].Load()
	}
	return st
}
