// Package trace is a stdlib-only, low-overhead query-tracing subsystem:
// each request builds a span tree (parse → translate → plan → execute,
// with execute fanning out into one timed span per operator), a
// lock-free ring buffer retains the last N traces for /debug/queries,
// and a threshold-triggered slow-query log captures outliers.
//
// The design keeps the per-row path allocation-free: operators
// accumulate timings into the executor's existing stat structs (two
// clock reads per operator, nothing per row), and the span tree is
// materialized once per request from a preallocated slab.
package trace

import (
	"time"
)

// Span is one timed node in a trace's tree. Offsets are relative to the
// trace start so a rendered tree never needs wall-clock anchoring.
type Span struct {
	Name     string  `json:"name"`
	Detail   string  `json:"detail,omitempty"`
	StartNs  int64   `json:"start_ns"`
	DurNs    int64   `json:"dur_ns"`
	RowsIn   int64   `json:"rows_in,omitempty"`
	RowsOut  int64   `json:"rows_out,omitempty"`
	Children []*Span `json:"children,omitempty"`

	start time.Time // set while the span is open
}

// Trace is one recorded request: a query (kind "query") or a graph
// mutation / maintenance operation (kind "write").
type Trace struct {
	ID    string    `json:"id"`
	Kind  string    `json:"kind"`
	Name  string    `json:"name"`
	SQL   string    `json:"sql,omitempty"`
	Start time.Time `json:"start"`
	DurNs int64     `json:"dur_ns"`
	Err   string    `json:"error,omitempty"`
	Slow  bool      `json:"slow,omitempty"`
	Root  *Span     `json:"root"`
}

// Duration returns the trace's total wall time.
func (t *Trace) Duration() time.Duration { return time.Duration(t.DurNs) }

// spanSlabSize is the per-request span preallocation: stage spans plus a
// typical operator fan-out fit without a second allocation; deeper trees
// fall back to individual spans.
const spanSlabSize = 24

// Builder assembles one trace. It is not safe for concurrent use: one
// request builds its trace from a single goroutine (operator timings
// from parallel workers arrive via the executor's stat structs, not via
// the builder).
type Builder struct {
	tr   *Trace
	t0   time.Time
	slab []Span
	open []*Span // stack of open spans; open[0] is the root
}

// NewBuilder starts a trace. An empty id gets a fresh one minted.
func NewBuilder(id, kind, name string) *Builder {
	if id == "" {
		id = NewID()
	}
	b := &Builder{slab: make([]Span, 0, spanSlabSize)}
	b.t0 = time.Now()
	root := b.alloc()
	root.Name = kind
	root.start = b.t0
	b.tr = &Trace{ID: id, Kind: kind, Name: name, Start: b.t0, Root: root}
	b.open = append(b.open, root)
	return b
}

// alloc hands out a span from the preallocated slab, falling back to an
// individual allocation once the slab is exhausted (the slab never
// regrows, so previously returned pointers stay valid).
func (b *Builder) alloc() *Span {
	if len(b.slab) < cap(b.slab) {
		b.slab = b.slab[:len(b.slab)+1]
		return &b.slab[len(b.slab)-1]
	}
	return new(Span)
}

// Begin opens a child span of the innermost open span.
func (b *Builder) Begin(name string) *Span {
	sp := b.alloc()
	sp.Name = name
	sp.start = time.Now()
	sp.StartNs = sp.start.Sub(b.t0).Nanoseconds()
	parent := b.open[len(b.open)-1]
	parent.Children = append(parent.Children, sp)
	b.open = append(b.open, sp)
	return sp
}

// End closes the given span (and anything opened after it).
func (b *Builder) End(sp *Span) {
	sp.DurNs = time.Since(sp.start).Nanoseconds()
	for i := len(b.open) - 1; i > 0; i-- {
		cur := b.open[i]
		b.open = b.open[:i]
		if cur == sp {
			break
		}
	}
}

// Child attaches an already-measured span (e.g. an operator timing
// lifted from executor stats) under parent. startNs is relative to the
// parent's start.
func (b *Builder) Child(parent *Span, name, detail string, startNs, durNs, rowsIn, rowsOut int64) *Span {
	sp := b.alloc()
	sp.Name = name
	sp.Detail = detail
	sp.StartNs = parent.StartNs + startNs
	sp.DurNs = durNs
	sp.RowsIn = rowsIn
	sp.RowsOut = rowsOut
	parent.Children = append(parent.Children, sp)
	return sp
}

// Observe attaches an already-measured span under the innermost open
// span, anchored by its absolute start time (e.g. a WAL fsync timed for
// the metrics counters anyway).
func (b *Builder) Observe(name, detail string, start time.Time, d time.Duration) *Span {
	sp := b.alloc()
	sp.Name = name
	sp.Detail = detail
	sp.StartNs = start.Sub(b.t0).Nanoseconds()
	sp.DurNs = d.Nanoseconds()
	parent := b.open[len(b.open)-1]
	parent.Children = append(parent.Children, sp)
	return sp
}

// Span returns the trace's root span (for attaching detail mid-build).
func (b *Builder) Span() *Span { return b.tr.Root }

// SetSQL records the translated SQL on the trace.
func (b *Builder) SetSQL(sql string) { b.tr.SQL = sql }

// Finish closes every open span and seals the trace.
func (b *Builder) Finish(err error) *Trace {
	for i := len(b.open) - 1; i >= 0; i-- {
		sp := b.open[i]
		sp.DurNs = time.Since(sp.start).Nanoseconds()
	}
	b.open = b.open[:0]
	b.tr.DurNs = time.Since(b.t0).Nanoseconds()
	if err != nil {
		b.tr.Err = err.Error()
	}
	return b.tr
}
