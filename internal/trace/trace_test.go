package trace

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBuilderSpanTreeShape(t *testing.T) {
	b := NewBuilder("", "query", "g.V().has('name','marko')")
	parse := b.Begin("parse")
	b.End(parse)
	tr := b.Begin("translate")
	b.End(tr)
	exec := b.Begin("execute")
	b.Child(exec, "scan", "VA index", 0, 1000, 10, 4)
	b.Child(exec, "join", "hash", 1000, 2000, 4, 4)
	b.End(exec)
	trc := b.Finish(nil)

	if trc.ID == "" || len(trc.ID) != 32 {
		t.Fatalf("trace id not minted: %q", trc.ID)
	}
	if trc.Kind != "query" || trc.Root == nil {
		t.Fatalf("bad trace: %+v", trc)
	}
	names := make([]string, 0, 3)
	for _, c := range trc.Root.Children {
		names = append(names, c.Name)
	}
	if got, want := strings.Join(names, ","), "parse,translate,execute"; got != want {
		t.Fatalf("stage spans = %s, want %s", got, want)
	}
	execSpan := trc.Root.Children[2]
	if len(execSpan.Children) != 2 {
		t.Fatalf("execute children = %d, want 2", len(execSpan.Children))
	}
	scan := execSpan.Children[0]
	if scan.Name != "scan" || scan.DurNs != 1000 || scan.RowsIn != 10 || scan.RowsOut != 4 {
		t.Fatalf("scan span = %+v", scan)
	}
	if scan.StartNs < execSpan.StartNs {
		t.Fatalf("child starts before parent: %d < %d", scan.StartNs, execSpan.StartNs)
	}
	if trc.DurNs <= 0 {
		t.Fatalf("trace duration not set")
	}
	for _, c := range trc.Root.Children {
		if c.DurNs < 0 || c.DurNs > trc.DurNs {
			t.Fatalf("span %s dur %d outside trace dur %d", c.Name, c.DurNs, trc.DurNs)
		}
	}
}

func TestBuilderSlabOverflow(t *testing.T) {
	b := NewBuilder("", "query", "deep")
	exec := b.Begin("execute")
	spans := make([]*Span, 0, 3*spanSlabSize)
	for i := 0; i < 3*spanSlabSize; i++ {
		spans = append(spans, b.Child(exec, fmt.Sprintf("op%d", i), "", int64(i), 1, 0, 0))
	}
	b.End(exec)
	trc := b.Finish(nil)
	if len(exec.Children) != 3*spanSlabSize {
		t.Fatalf("children = %d", len(exec.Children))
	}
	// Pointers handed out before the slab filled must still be the spans
	// wired into the tree.
	for i, sp := range spans {
		if exec.Children[i] != sp {
			t.Fatalf("span %d pointer invalidated by slab growth", i)
		}
	}
	if trc.Root.Children[0] != exec {
		t.Fatal("execute span detached")
	}
}

func TestBuilderFinishError(t *testing.T) {
	b := NewBuilder("abc", "query", "bad")
	b.Begin("parse") // left open: Finish must close it
	trc := b.Finish(fmt.Errorf("syntax error"))
	if trc.ID != "abc" {
		t.Fatalf("id = %q", trc.ID)
	}
	if trc.Err != "syntax error" {
		t.Fatalf("err = %q", trc.Err)
	}
	if trc.Root.Children[0].DurNs <= 0 {
		t.Fatal("open span not closed by Finish")
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRing(4)
	for i := 1; i <= 6; i++ {
		r.Add(&Trace{ID: fmt.Sprintf("t%d", i)})
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	for i, want := range []string{"t6", "t5", "t4", "t3"} {
		if got[i].ID != want {
			t.Fatalf("snapshot[%d] = %s, want %s (newest first)", i, got[i].ID, want)
		}
	}
	if r.Get("t1") != nil || r.Get("t2") != nil {
		t.Fatal("evicted traces still retrievable")
	}
	if tr := r.Get("t5"); tr == nil || tr.ID != "t5" {
		t.Fatalf("Get(t5) = %+v", tr)
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Add(&Trace{ID: fmt.Sprintf("w%d-%d", w, i)})
				r.Snapshot()
			}
		}(w)
	}
	wg.Wait()
	if got := r.Snapshot(); len(got) != 8 {
		t.Fatalf("len = %d, want 8", len(got))
	}
}

func TestRecorderRoutingAndSlow(t *testing.T) {
	r := NewRecorder(4, 10*time.Millisecond)
	fast := &Trace{ID: "q1", Kind: "query", DurNs: int64(time.Millisecond)}
	slow := &Trace{ID: "q2", Kind: "query", DurNs: int64(50 * time.Millisecond)}
	wr := &Trace{ID: "w1", Kind: "write", DurNs: int64(time.Millisecond)}
	r.Record(fast)
	r.Record(slow)
	r.Record(wr)

	if got := r.Queries(); len(got) != 2 {
		t.Fatalf("queries = %d, want 2", len(got))
	}
	if got := r.Writes(); len(got) != 1 || got[0].ID != "w1" {
		t.Fatalf("writes = %+v", got)
	}
	sl := r.Slow()
	if len(sl) != 1 || sl[0].ID != "q2" || !sl[0].Slow {
		t.Fatalf("slow = %+v", sl)
	}
	if r.SlowCount() != 1 {
		t.Fatalf("slow count = %d", r.SlowCount())
	}
	if tr := r.Get("w1"); tr == nil || tr.Kind != "write" {
		t.Fatalf("Get(w1) = %+v", tr)
	}
	if r.Get("nope") != nil {
		t.Fatal("Get of unknown id should be nil")
	}

	// Negative threshold disables slow capture.
	r.SetSlowThreshold(-1)
	r.Record(&Trace{ID: "q3", Kind: "query", DurNs: int64(time.Second)})
	if r.SlowCount() != 1 {
		t.Fatal("slow capture not disabled")
	}
}

func TestRecorderWriteStats(t *testing.T) {
	r := NewRecorder(0, 0)
	r.ObserveWALAppend(time.Microsecond)
	r.ObserveWALFsync(2 * time.Millisecond)
	r.ObserveWALFsync(3 * time.Millisecond)
	r.ObserveCheckpoint(time.Millisecond)
	r.ObserveVacuum(time.Millisecond)
	ws := r.WriteStats()
	if ws.WALAppends != 1 || ws.WALFsyncs != 2 || ws.Checkpoints != 1 || ws.Vacuums != 1 {
		t.Fatalf("counters = %+v", ws)
	}
	if ws.WALFsyncNs != int64(5*time.Millisecond) {
		t.Fatalf("fsync ns = %d", ws.WALFsyncNs)
	}
}

func TestParseTraceparent(t *testing.T) {
	id := "4bf92f3577b34da6a3ce929d0e0e4736"
	cases := []struct {
		in   string
		want string
	}{
		{"00-" + id + "-00f067aa0ba902b7-01", id},
		{" 00-" + id + "-00f067aa0ba902b7-00 ", id},
		{"ff-" + id + "-00f067aa0ba902b7-01", ""},                      // forbidden version
		{"00-" + strings.Repeat("0", 32) + "-00f067aa0ba902b7-01", ""}, // zero trace-id
		{"00-" + id + "-00f067aa0ba902b7", ""},                         // missing flags
		{"00-" + strings.ToUpper(id) + "-00f067aa0ba902b7-01", ""},     // uppercase hex invalid
		{"garbage", ""},
		{"", ""},
	}
	for _, c := range cases {
		if got := ParseTraceparent(c.in); got != c.want {
			t.Errorf("ParseTraceparent(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	id := NewID()
	h := Traceparent(id)
	if got := ParseTraceparent(h); got != id {
		t.Fatalf("round trip: %q -> %q", h, got)
	}
	if id2 := NewID(); id2 == id {
		t.Fatal("NewID returned duplicate")
	}
}

func TestTextRendering(t *testing.T) {
	b := NewBuilder("deadbeefdeadbeefdeadbeefdeadbeef", "query", "g.V().out()")
	b.SetSQL("SELECT * FROM VA")
	exec := b.Begin("execute")
	b.Child(exec, "scan", "VA full", 0, 1500, 100, 40)
	b.End(exec)
	trc := b.Finish(nil)
	text := trc.Text()
	for _, want := range []string{
		"trace deadbeefdeadbeefdeadbeefdeadbeef query",
		"sql: SELECT * FROM VA",
		"execute",
		"  scan [VA full] rows=100/40",
		"time=",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Text() missing %q:\n%s", want, text)
		}
	}
}

func TestTraceJSONShape(t *testing.T) {
	b := NewBuilder("", "query", "q")
	exec := b.Begin("execute")
	b.Child(exec, "scan", "d", 0, 10, 1, 1)
	b.End(exec)
	trc := b.Finish(nil)
	raw, err := json.Marshal(trc)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"id", "kind", "root", "dur_ns"} {
		if _, ok := m[k]; !ok {
			t.Errorf("trace JSON missing %q: %s", k, raw)
		}
	}
}
