package translate

import (
	"fmt"

	"sqlgraph/internal/gremlin/expr"
)

// renderExpr compiles a closure expression into a SQL scalar expression
// over the current element. The caller's template must bind V to the
// current CTE and — for vertex/edge inputs — A to the matching attribute
// table row (VA or EA), which is where `it.<prop>` resolves. The SQL
// engine's expression semantics (3VL AND/OR, null propagation, mixed
// int/float arithmetic, division-by-zero errors) are the reference
// semantics the closure evaluator copies, so rendering is a direct
// syntax mapping; the one case that cannot map — `/` or `%` whose
// divisor is not a nonzero numeric literal — returns ErrTailEval.
func (t *translator) renderExpr(n expr.Node) (string, error) {
	switch x := n.(type) {
	case *expr.Lit:
		return sqlExprLit(x.Val), nil
	case *expr.It:
		return t.renderIt(x)
	case *expr.Unary:
		sub, err := t.renderExpr(x.X)
		if err != nil {
			return "", err
		}
		if x.Op == "!" {
			return fmt.Sprintf("(NOT %s)", sub), nil
		}
		return fmt.Sprintf("(- %s)", sub), nil
	case *expr.Binary:
		if x.Op == "/" || x.Op == "%" {
			if err := checkDivisor(x); err != nil {
				return "", err
			}
		}
		l, err := t.renderExpr(x.L)
		if err != nil {
			return "", err
		}
		r, err := t.renderExpr(x.R)
		if err != nil {
			return "", err
		}
		op := x.Op
		switch x.Op {
		case "&&":
			op = "AND"
		case "||":
			op = "OR"
		case "==":
			op = "="
		case "!=":
			op = "<>"
		}
		return fmt.Sprintf("(%s %s %s)", l, op, r), nil
	case *expr.Call:
		recv, err := t.renderExpr(x.Recv)
		if err != nil {
			return "", err
		}
		arg, err := t.renderExpr(x.Arg)
		if err != nil {
			return "", err
		}
		fn := "CONTAINS"
		if x.Name == "startsWith" {
			fn = "STARTSWITH"
		}
		return fmt.Sprintf("%s(%s, %s)", fn, recv, arg), nil
	default:
		return "", fmt.Errorf("translate: unsupported closure node %T", n)
	}
}

func (t *translator) renderIt(x *expr.It) (string, error) {
	switch x.Field {
	case "":
		return "V.VAL", nil
	case "loops":
		// Loop closures are resolved to a static bound at parse time;
		// it.loops anywhere else has no SQL counterpart.
		return "", fmt.Errorf("translate: it.loops outside a loop closure")
	case "id":
		if t.typ == ElemValue {
			return "NULL", nil
		}
		return "V.VAL", nil
	default:
		switch t.typ {
		case ElemVertex:
			return fmt.Sprintf("JSON_VAL(A.ATTR, %s)", lit(x.Field)), nil
		case ElemEdge:
			if x.Field == "label" {
				return "A.LBL", nil
			}
			return fmt.Sprintf("JSON_VAL(A.ATTR, %s)", lit(x.Field)), nil
		default:
			// Plain values carry no attributes.
			return "NULL", nil
		}
	}
}

// checkDivisor enforces the pushdown precondition for `/` and `%`: the
// divisor must be a numeric literal (optionally negated) that does not
// trigger the engine's division-by-zero error. Anything else — a
// data-dependent divisor, or a literal zero — is flagged ErrTailEval so
// the per-row error surfaces from the closure evaluator, matching the
// interpreter exactly, instead of from deep inside a SQL scan.
func checkDivisor(b *expr.Binary) error {
	v, ok := numericLit(b.R)
	if !ok {
		return fmt.Errorf("%w: non-literal divisor in %s", ErrTailEval, b.String())
	}
	var zero bool
	switch n := v.(type) {
	case int64:
		zero = n == 0
	case float64:
		if b.Op == "%" {
			// Modulo truncates the divisor to int first.
			zero = int64(n) == 0
		} else {
			zero = n == 0
		}
	}
	if zero {
		return fmt.Errorf("%w: zero divisor in %s", ErrTailEval, b.String())
	}
	return nil
}

// numericLit unwraps an optionally-negated numeric literal.
func numericLit(n expr.Node) (any, bool) {
	neg := false
	if u, ok := n.(*expr.Unary); ok && u.Op == "-" {
		n = u.X
		neg = true
	}
	l, ok := n.(*expr.Lit)
	if !ok {
		return nil, false
	}
	switch v := l.Val.(type) {
	case int64:
		if neg {
			return -v, true
		}
		return v, true
	case float64:
		if neg {
			return -v, true
		}
		return v, true
	}
	return nil, false
}

// sqlExprLit renders a closure literal as SQL. Unlike lit(), floats are
// rendered in fixed-point notation (the SQL lexer does not accept
// exponent forms) with a forced decimal point so they stay floats.
func sqlExprLit(v any) string {
	if f, ok := v.(float64); ok {
		return expr.FormatFloat(f)
	}
	return lit(v)
}
