package translate

import (
	"errors"
	"strings"
	"testing"

	"sqlgraph/internal/gremlin"
)

// SQL-shape tests for the closure/order/group templates, pinned across
// all three storage modes: the acceptance bar is that order+range and
// groupCount shapes are SQL pushdown (never tail fallback), and that the
// refuse-and-fallback decision points fire exactly where designed.

var allOpts = []Options{{}, {ForceEA: true}, {ForceHashTables: true}}

func TestClosureFilterTemplates(t *testing.T) {
	for _, opts := range allOpts {
		// Vertex closures join VA and compile operators 1:1.
		sql := tr(t, "g.V.out.filter{it.age * 2 >= 60 && it.name != 'lop'}", opts).SQL
		wants(t, sql,
			"VA A WHERE A.VID = V.VAL",
			"((JSON_VAL(A.ATTR, 'age') * 2) >= 60)",
			"(JSON_VAL(A.ATTR, 'name') <> 'lop')",
			" AND ",
		)
		// Edge closures join EA; it.label is the LBL column.
		sql = tr(t, "g.E.filter{it.label == 'knows' || it.weight > 0.5}", opts).SQL
		wants(t, sql, "EA A WHERE A.EID = V.VAL", "(A.LBL = 'knows')", "(JSON_VAL(A.ATTR, 'weight') > 0.5)", " OR ")
		// Value closures compare VAL directly, no attribute join.
		sql = tr(t, "g.V.id.filter{it > 2}", opts).SQL
		wants(t, sql, "V WHERE (V.VAL > 2)")
		// String builtins map to scalar functions.
		sql = tr(t, "g.V.filter{it.name.startsWith('ma') && it.name.contains('rko')}", opts).SQL
		wants(t, sql, "STARTSWITH(JSON_VAL(A.ATTR, 'name'), 'ma')", "CONTAINS(JSON_VAL(A.ATTR, 'name'), 'rko')")
		// Negation renders through SQL NOT; unary minus stays prefix.
		sql = tr(t, "g.V.filter{!(it.age == 29) && it.k > -1}", opts).SQL
		wants(t, sql, "(NOT (JSON_VAL(A.ATTR, 'age') = 29))", "> (- 1)")
	}
}

func TestOrderTemplates(t *testing.T) {
	for _, opts := range allOpts {
		// order() sorts the value column in place.
		sql := tr(t, "g.V.out.order()", opts).SQL
		wants(t, sql, "ORDER BY VAL")
		rejects(t, sql, "OKEY")
		// order{key} computes the key, sorts on (key, element), then
		// projects the key away — three CTEs.
		sql = tr(t, "g.V.order{it.age}", opts).SQL
		wants(t, sql,
			"JSON_VAL(A.ATTR, 'age') AS OKEY",
			"ORDER BY OKEY, VAL",
		)
		if !strings.Contains(sql, "SELECT VAL FROM T3") {
			t.Fatalf("keyed order must strip OKEY via a final projection:\n%s", sql)
		}
		// order + range is the paginate shape: pushdown, ORDER BY before
		// LIMIT/OFFSET.
		sql = tr(t, "g.V.order{it.name}.range(0, 9)", opts).SQL
		ob := strings.Index(sql, "ORDER BY OKEY, VAL")
		lim := strings.Index(sql, "LIMIT 10 OFFSET 0")
		if ob < 0 || lim < 0 || lim < ob {
			t.Fatalf("order+range must push ORDER BY before LIMIT (order@%d limit@%d):\n%s", ob, lim, sql)
		}
		// Edge keys resolve label via LBL.
		sql = tr(t, "g.E.order{it.label}", opts).SQL
		wants(t, sql, "A.LBL AS OKEY", "EA A WHERE A.EID = V.VAL")
	}
}

func TestGroupTemplates(t *testing.T) {
	for _, opts := range allOpts {
		// groupCount packs (key, COUNT(*)) per group and orders groups.
		sql := tr(t, "g.V.out.groupCount{it.age}", opts).SQL
		wants(t, sql,
			"(LIST() || JSON_VAL(A.ATTR, 'age') || COUNT(*)) AS VAL",
			"GROUP BY JSON_VAL(A.ATTR, 'age')",
			"ORDER BY VAL",
		)
		// groupBy aggregates values with LISTAGG.
		sql = tr(t, "g.V.groupBy{it.lang}{it.name}", opts).SQL
		wants(t, sql,
			"(LIST() || JSON_VAL(A.ATTR, 'lang') || LISTAGG(JSON_VAL(A.ATTR, 'name'))) AS VAL",
			"GROUP BY JSON_VAL(A.ATTR, 'lang')",
		)
		// Edge label grouping goes through LBL.
		sql = tr(t, "g.E.groupCount{it.label}", opts).SQL
		wants(t, sql, "(LIST() || A.LBL || COUNT(*)) AS VAL", "GROUP BY A.LBL")
		// Value-typed input groups on VAL itself, no attribute join.
		sql = tr(t, "g.V.id.groupCount{it}", opts).SQL
		wants(t, sql, "(LIST() || V.VAL || COUNT(*)) AS VAL", "V GROUP BY V.VAL")
		rejects(t, sql, "VA A")
	}
}

func TestClosureIfThenElseTemplate(t *testing.T) {
	// A general closure test reuses the branch-union template with the
	// compiled condition on the then-side.
	sql := tr(t, "g.V.ifThenElse{it.age > 28 && it.age < 33}{it.out}{it.in}", Options{ForceEA: true}).SQL
	wants(t, sql,
		"((JSON_VAL(A.ATTR, 'age') > 28) AND (JSON_VAL(A.ATTR, 'age') < 33))",
		"NOT IN (SELECT VAL FROM",
		"UNION ALL",
	)
}

func TestTailEvalDecisionPoints(t *testing.T) {
	sch := fakeSchema{}
	mustSplit := func(q string, wantTail int) {
		t.Helper()
		parsed, err := gremlin.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		for _, opts := range allOpts {
			if _, err := Translate(parsed, sch, opts); !errors.Is(err, ErrTailEval) {
				t.Fatalf("%q: want ErrTailEval, got %v", q, err)
			}
			trn, tail, err := TranslateWithTail(parsed, sch, opts)
			if err != nil {
				t.Fatalf("%q: split failed: %v", q, err)
			}
			if len(tail) != wantTail {
				t.Fatalf("%q: tail has %d steps, want %d", q, len(tail), wantTail)
			}
			if trn.SQL == "" {
				t.Fatalf("%q: empty prefix SQL", q)
			}
		}
	}
	// Data-dependent divisor: the filter and everything after it move to
	// the tail.
	mustSplit("g.V.filter{60 / it.age >= 2}", 1)
	mustSplit("g.V.out.filter{60 / it.age >= 2}.out.count()", 3)
	// Literal zero divisor raises per-row errors; same fallback.
	mustSplit("g.V.filter{it.age % 0 == 1}", 1)
	// The divisor rule also fires inside order/group key closures.
	mustSplit("g.V.order{100 / it.age}", 1)
	mustSplit("g.V.groupCount{it.age / (it.k + 1)}", 1)

	// A nonzero literal divisor stays pushdown.
	for _, opts := range allOpts {
		sql := tr(t, "g.V.filter{it.age / 2 >= 14}", opts).SQL
		wants(t, sql, "(JSON_VAL(A.ATTR, 'age') / 2)")
		sql = tr(t, "g.V.filter{it.age % 7 == 1}", opts).SQL
		wants(t, sql, "(JSON_VAL(A.ATTR, 'age') % 7)")
	}

	// Suffixes the tail executor cannot run keep the original error.
	parsed, err := gremlin.Parse("g.V.as('x').out.filter{60 / it.age >= 2}.back('x')")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := TranslateWithTail(parsed, sch, Options{}); !errors.Is(err, ErrTailEval) {
		t.Fatalf("non-tail-evaluable suffix: want original ErrTailEval, got %v", err)
	}
}

func TestOrderGroupPathRefusal(t *testing.T) {
	// Like dedup, order/group collapse the PATH column; a later
	// path-dependent step has no representative path to keep.
	for _, q := range []string{
		"g.V.out.order().out.path",
		"g.V.out.groupCount{it.age}.path",
	} {
		err := trErr(t, q, Options{})
		if !strings.Contains(err.Error(), "path-dependent") {
			t.Fatalf("%q: unexpected error %v", q, err)
		}
	}
	// order before a path pipe that already consumed tracking is fine.
	sql := tr(t, "g.V.out.path.order()", Options{}).SQL
	wants(t, sql, "ORDER BY VAL")
}
