package translate

import (
	"fmt"
	"math"
	"strings"

	"sqlgraph/internal/gremlin"
)

// direction of a traversal step.
type direction int

const (
	dirOut direction = iota
	dirIn
)

// estimateStep advances the running cardinality estimate past one pipe,
// so the CTEs the pipe emits snapshot the pipe's output estimate. The
// model is deliberately coarse (uniform-fanout traversals, fixed filter
// selectivities): hints only steer join costing and EXPLAIN's est=
// column, never correctness.
func (t *translator) estimateStep(s *gremlin.Step) {
	if t.gstats == nil {
		return
	}
	switch s.Kind {
	case gremlin.StepOut, gremlin.StepOutE:
		t.est *= t.gstats.OutFanout(s.Labels)
	case gremlin.StepIn, gremlin.StepInE:
		t.est *= t.gstats.InFanout(s.Labels)
	case gremlin.StepBoth, gremlin.StepBothE:
		t.est *= t.gstats.OutFanout(s.Labels) + t.gstats.InFanout(s.Labels)
	case gremlin.StepBothV:
		t.est *= 2
	case gremlin.StepHas, gremlin.StepFilter:
		if s.Op == gremlin.OpEq {
			t.est *= hintSelEq
		} else {
			t.est *= hintSelFilter
		}
	case gremlin.StepHasNot, gremlin.StepInterval:
		t.est *= hintSelFilter
	case gremlin.StepDedup:
		switch t.typ {
		case ElemVertex:
			t.est = math.Min(t.est, t.gstats.VertexCount())
		case ElemEdge:
			t.est = math.Min(t.est, t.gstats.EdgeCount())
		}
	case gremlin.StepCount:
		t.est = 1
	case gremlin.StepRange:
		if lo, ok := s.Lo.(int64); ok {
			if hi, ok := s.Hi.(int64); ok {
				n := float64(hi - lo + 1)
				if n < 0 {
					n = 0
				}
				t.est = math.Min(t.est, n)
			}
		}
	case gremlin.StepExcept, gremlin.StepRetain:
		t.est *= 0.5
	case gremlin.StepSimplePath:
		t.est *= 0.9
	case gremlin.StepGroupBy, gremlin.StepGroupCount:
		// One output row per distinct key; model the collapse like a
		// coarse filter but never below one group.
		t.est = math.Max(1, t.est*hintSelFilter)
	}
	if t.est < 0 {
		t.est = 0
	}
}

// step translates one non-loop pipe.
func (t *translator) step(s *gremlin.Step) error {
	switch s.Kind {
	case gremlin.StepOut:
		return t.adjacency(s.Labels, []direction{dirOut}, false)
	case gremlin.StepIn:
		return t.adjacency(s.Labels, []direction{dirIn}, false)
	case gremlin.StepBoth:
		return t.adjacency(s.Labels, []direction{dirOut, dirIn}, false)
	case gremlin.StepOutE:
		return t.adjacency(s.Labels, []direction{dirOut}, true)
	case gremlin.StepInE:
		return t.adjacency(s.Labels, []direction{dirIn}, true)
	case gremlin.StepBothE:
		return t.adjacency(s.Labels, []direction{dirOut, dirIn}, true)
	case gremlin.StepOutV, gremlin.StepInV, gremlin.StepBothV:
		return t.edgeEndpoints(s.Kind)
	case gremlin.StepID:
		if t.typ == ElemValue {
			return fmt.Errorf("translate: id on values")
		}
		// VAL already holds the element id; only the type changes.
		t.typ = ElemValue
		return nil
	case gremlin.StepLabel:
		if t.typ != ElemEdge {
			return fmt.Errorf("translate: label requires edges")
		}
		t.cur = t.add(fmt.Sprintf(
			"SELECT P.LBL AS VAL%s FROM %s V, EA P WHERE P.EID = V.VAL", t.extendPath(), t.cur))
		t.bumpDepth(ElemValue)
		return nil
	case gremlin.StepProperty:
		return t.property(s.Key)
	case gremlin.StepPath:
		if !t.track {
			return fmt.Errorf("translate: internal: path pipe without tracking")
		}
		t.cur = t.add(fmt.Sprintf("SELECT (V.PATH || V.VAL) AS VAL FROM %s V", t.cur))
		t.typ = ElemValue
		t.track = false // paths are now plain values
		return nil
	case gremlin.StepCount:
		t.cur = t.add(fmt.Sprintf("SELECT COUNT(*) AS VAL FROM %s", t.cur))
		t.typ = ElemValue
		t.track = false
		t.depth = 1
		t.typeHistReset(ElemValue)
		return nil
	case gremlin.StepHas, gremlin.StepFilter, gremlin.StepHasNot, gremlin.StepInterval:
		return t.filter(s)
	case gremlin.StepDedup:
		// Gremlin dedups on the element, not its path, so a DISTINCT over
		// (VAL, PATH) would keep one row per distinct path and overcount
		// downstream. Collapse to VAL and stop tracking; if a later step
		// still needs paths there is no single representative to keep, so
		// refuse rather than answer wrongly.
		if t.track && needsPathTracking(t.rest) {
			return fmt.Errorf("translate: dedup() before a path-dependent step is unsupported")
		}
		t.cur = t.add(fmt.Sprintf("SELECT DISTINCT VAL FROM %s", t.cur))
		t.track = false
		return nil
	case gremlin.StepRange:
		lo := s.Lo.(int64)
		hi := s.Hi.(int64)
		n := hi - lo + 1
		if n < 0 {
			n = 0
		}
		t.cur = t.add(fmt.Sprintf("SELECT VAL%s FROM %s LIMIT %d OFFSET %d",
			t.pathSel(), t.cur, n, lo))
		return nil
	case gremlin.StepSimplePath:
		if !t.track {
			return fmt.Errorf("translate: internal: simplePath without tracking")
		}
		t.cur = t.add(fmt.Sprintf(
			"SELECT V.VAL AS VAL, V.PATH AS PATH FROM %s V WHERE ISSIMPLEPATH(V.PATH || V.VAL) = 1", t.cur))
		return nil
	case gremlin.StepExcept, gremlin.StepRetain:
		agg, ok := t.aggs[s.Name]
		if !ok {
			return fmt.Errorf("translate: %s(%s) references an unknown aggregate", s.Kind, s.Name)
		}
		op := "NOT IN"
		if s.Kind == gremlin.StepRetain {
			op = "IN"
		}
		t.cur = t.add(fmt.Sprintf("SELECT VAL%s FROM %s WHERE VAL %s (SELECT VAL FROM %s)",
			t.pathSel(), t.cur, op, agg))
		return nil
	case gremlin.StepBack:
		return t.back(s)
	case gremlin.StepAs:
		t.marks[s.Name] = mark{depth: t.depth, typ: t.typ}
		return nil
	case gremlin.StepAggregate:
		t.aggs[s.Name] = t.add(fmt.Sprintf("SELECT VAL FROM %s", t.cur))
		return nil
	case gremlin.StepTable, gremlin.StepIterate:
		// Side-effect pipes are identity functions (paper Section 4.4).
		return nil
	case gremlin.StepOrder:
		return t.order(s)
	case gremlin.StepGroupBy, gremlin.StepGroupCount:
		return t.group(s)
	case gremlin.StepIfThenElse:
		return t.ifThenElse(s)
	default:
		return fmt.Errorf("translate: unsupported pipe %v", s.Kind)
	}
}

// pathSel renders ", PATH" for plain column carries.
func (t *translator) pathSel() string {
	if !t.track {
		return ""
	}
	return ", PATH"
}

// typeHist tracks the element type at each static path position; back()
// needs it to restore the element type.
func (t *translator) bumpDepth(newType ElemType) {
	if t.hist == nil {
		t.hist = []ElemType{t.typ}
	}
	t.hist = append(t.hist, newType)
	t.depth++
	t.typ = newType
}

func (t *translator) typeHistReset(typ ElemType) {
	t.hist = []ElemType{typ}
}

// useEA reports whether adjacency steps should use the EA copy: single
// lookup queries, or the ForceEA ablation (paper Section 3.5 / 4.3).
func (t *translator) useEA() bool {
	if t.opts.ForceHashTables {
		return false
	}
	return t.opts.ForceEA || t.traversal <= 1
}

// adjacency translates out/in/both and their edge variants.
func (t *translator) adjacency(labels []string, dirs []direction, toEdges bool) error {
	if t.typ != ElemVertex {
		return fmt.Errorf("translate: adjacency step on %s input", t.typ)
	}
	// A label argument list is a membership test: out('a', 'a') matches an
	// 'a'-edge once. The hash-table translation expands one branch per
	// label, so duplicates would double-count rows.
	labels = uniqueLabels(labels)
	var branches []string
	for _, d := range dirs {
		if t.useEA() {
			branches = append(branches, t.adjacencyEA(labels, d, toEdges))
		} else {
			name, err := t.adjacencyHash(labels, d, toEdges)
			if err != nil {
				return err
			}
			branches = append(branches, name)
		}
	}
	if len(branches) == 1 {
		t.cur = branches[0]
	} else {
		t.cur = t.add(fmt.Sprintf("SELECT VAL%s FROM %s UNION ALL SELECT VAL%s FROM %s",
			t.pathSel(), branches[0], t.pathSel(), branches[1]))
	}
	newType := ElemVertex
	if toEdges {
		newType = ElemEdge
	}
	t.bumpDepth(newType)
	return nil
}

// adjacencyEA emits the single-lookup EA template. Note the paper's EA
// column naming: INV is the edge's source, OUTV its target.
func (t *translator) adjacencyEA(labels []string, d direction, toEdges bool) string {
	srcCol, dstCol := "INV", "OUTV"
	if d == dirIn {
		srcCol, dstCol = "OUTV", "INV"
	}
	sel := "P." + dstCol
	if toEdges {
		sel = "P.EID"
	}
	cond := fmt.Sprintf("P.%s = V.VAL", srcCol)
	if len(labels) == 1 {
		cond += fmt.Sprintf(" AND P.LBL = %s", lit(labels[0]))
	} else if len(labels) > 1 {
		quoted := make([]string, len(labels))
		for i, l := range labels {
			quoted[i] = lit(l)
		}
		cond += " AND P.LBL IN (" + strings.Join(quoted, ", ") + ")"
	}
	return t.add(fmt.Sprintf("SELECT %s AS VAL%s FROM %s V, EA P WHERE %s",
		sel, t.extendPath(), t.cur, cond))
}

// adjacencyHash emits the OPA/OSA (or IPA/ISA) two-CTE template of
// Table 8.
func (t *translator) adjacencyHash(labels []string, d direction, toEdges bool) (string, error) {
	primary, secondary := "OPA", "OSA"
	cols := t.sch.OutColumns()
	colFor := t.sch.OutColumnFor
	if d == dirIn {
		primary, secondary = "IPA", "ISA"
		cols = t.sch.InColumns()
		colFor = t.sch.InColumnFor
	}

	var primaries []string
	if len(labels) == 0 {
		// All labels: unnest every column triad.
		var values []string
		for k := 0; k < cols; k++ {
			if toEdges {
				values = append(values, fmt.Sprintf("(P.EID%d, P.VAL%d)", k, k))
			} else {
				values = append(values, fmt.Sprintf("(P.VAL%d)", k))
			}
		}
		var body string
		if toEdges {
			body = fmt.Sprintf(
				"SELECT T.EID AS EID, T.VAL AS VAL%s FROM %s V, %s P, TABLE(VALUES%s) AS T(EID, VAL) WHERE P.VID = V.VAL AND P.VID >= 0 AND T.VAL IS NOT NULL",
				t.extendPath(), t.cur, primary, strings.Join(values, ", "))
		} else {
			body = fmt.Sprintf(
				"SELECT T.VAL AS VAL%s FROM %s V, %s P, TABLE(VALUES%s) AS T(VAL) WHERE P.VID = V.VAL AND P.VID >= 0 AND T.VAL IS NOT NULL",
				t.extendPath(), t.cur, primary, strings.Join(values, ", "))
		}
		primaries = append(primaries, t.add(body))
	} else {
		for _, label := range labels {
			k := colFor(label)
			var body string
			if toEdges {
				body = fmt.Sprintf(
					"SELECT P.EID%d AS EID, P.VAL%d AS VAL%s FROM %s V, %s P WHERE P.VID = V.VAL AND P.VID >= 0 AND P.LBL%d = %s AND P.VAL%d IS NOT NULL",
					k, k, t.extendPath(), t.cur, primary, k, lit(label), k)
			} else {
				body = fmt.Sprintf(
					"SELECT P.VAL%d AS VAL%s FROM %s V, %s P WHERE P.VID = V.VAL AND P.VID >= 0 AND P.LBL%d = %s AND P.VAL%d IS NOT NULL",
					k, t.extendPath(), t.cur, primary, k, lit(label), k)
			}
			primaries = append(primaries, t.add(body))
		}
	}
	prim := primaries[0]
	if len(primaries) > 1 {
		var parts []string
		sel := "SELECT VAL" + t.pathSel()
		if toEdges {
			sel = "SELECT EID, VAL" + t.pathSel()
		}
		for _, p := range primaries {
			parts = append(parts, sel+" FROM "+p)
		}
		prim = t.add(strings.Join(parts, " UNION ALL "))
	}

	// Secondary expansion: direct values pass through COALESCE; list ids
	// fan out into the secondary table.
	var body string
	pathCarry := ""
	if t.track {
		pathCarry = ", P.PATH AS PATH"
	}
	if toEdges {
		body = fmt.Sprintf(
			"SELECT COALESCE(S.EID, P.EID) AS VAL%s FROM %s P LEFT OUTER JOIN %s S ON P.VAL = S.VALID",
			pathCarry, prim, secondary)
	} else {
		body = fmt.Sprintf(
			"SELECT COALESCE(S.VAL, P.VAL) AS VAL%s FROM %s P LEFT OUTER JOIN %s S ON P.VAL = S.VALID",
			pathCarry, prim, secondary)
	}
	return t.add(body), nil
}

// edgeEndpoints translates outV/inV/bothV. Gremlin's outV is the edge's
// source vertex, stored in EA.INV (paper column naming).
func (t *translator) edgeEndpoints(kind gremlin.StepKind) error {
	if t.typ != ElemEdge {
		return fmt.Errorf("translate: %v requires edges", kind)
	}
	switch kind {
	case gremlin.StepOutV:
		t.cur = t.add(fmt.Sprintf("SELECT P.INV AS VAL%s FROM %s V, EA P WHERE P.EID = V.VAL",
			t.extendPath(), t.cur))
	case gremlin.StepInV:
		t.cur = t.add(fmt.Sprintf("SELECT P.OUTV AS VAL%s FROM %s V, EA P WHERE P.EID = V.VAL",
			t.extendPath(), t.cur))
	default: // bothV
		t.cur = t.add(fmt.Sprintf(
			"SELECT T.VAL AS VAL%s FROM %s V, EA P, TABLE(VALUES(P.INV), (P.OUTV)) AS T(VAL) WHERE P.EID = V.VAL",
			t.extendPath(), t.cur))
	}
	t.bumpDepth(ElemVertex)
	return nil
}

// property translates property access: JSON attribute lookup in VA or EA.
func (t *translator) property(key string) error {
	switch t.typ {
	case ElemVertex:
		jv := fmt.Sprintf("JSON_VAL(A.ATTR, %s)", lit(key))
		t.cur = t.add(fmt.Sprintf(
			"SELECT %s AS VAL%s FROM %s V, VA A WHERE A.VID = V.VAL AND %s IS NOT NULL",
			jv, t.extendPath(), t.cur, jv))
	case ElemEdge:
		if key == "label" {
			return t.step(&gremlin.Step{Kind: gremlin.StepLabel})
		}
		jv := fmt.Sprintf("JSON_VAL(A.ATTR, %s)", lit(key))
		t.cur = t.add(fmt.Sprintf(
			"SELECT %s AS VAL%s FROM %s V, EA A WHERE A.EID = V.VAL AND %s IS NOT NULL",
			jv, t.extendPath(), t.cur, jv))
	default:
		return fmt.Errorf("translate: property access on values")
	}
	t.bumpDepth(ElemValue)
	return nil
}

// filter translates mid-pipeline has/hasNot/filter/interval.
func (t *translator) filter(s *gremlin.Step) error {
	if s.Kind == gremlin.StepFilter && s.Key == "" && s.FilterExpr != nil {
		return t.exprFilter(s)
	}
	switch t.typ {
	case ElemVertex:
		cond, ok, err := attrCond(s, "A.ATTR")
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("translate: unsupported vertex filter %v", s.Kind)
		}
		t.cur = t.add(fmt.Sprintf("SELECT V.VAL AS VAL%s FROM %s V, VA A WHERE A.VID = V.VAL AND %s",
			t.carryPath(), t.cur, cond))
	case ElemEdge:
		cond, err := edgeFilterCond(s)
		if err != nil {
			return err
		}
		t.cur = t.add(fmt.Sprintf("SELECT V.VAL AS VAL%s FROM %s V, EA A WHERE A.EID = V.VAL AND %s",
			t.carryPath(), t.cur, cond))
	default:
		// Value filter compares VAL directly.
		if s.Kind != gremlin.StepFilter && s.Kind != gremlin.StepHas {
			return fmt.Errorf("translate: %v unsupported on values", s.Kind)
		}
		if s.Op == "" {
			return fmt.Errorf("translate: existence test unsupported on values")
		}
		op, err := sqlOp(s.Op)
		if err != nil {
			return err
		}
		t.cur = t.add(fmt.Sprintf("SELECT V.VAL AS VAL%s FROM %s V WHERE V.VAL %s %s",
			t.carryPath(), t.cur, op, lit(s.Value)))
	}
	return nil
}

// exprFilter translates a general closure filter: the closure compiles
// to a WHERE condition over the element and its attribute row, so SQL's
// three-valued WHERE gives exactly the evaluator's truthy-or-drop rule.
func (t *translator) exprFilter(s *gremlin.Step) error {
	cond, err := t.renderExpr(s.FilterExpr)
	if err != nil {
		return err
	}
	switch t.typ {
	case ElemVertex:
		t.cur = t.add(fmt.Sprintf("SELECT V.VAL AS VAL%s FROM %s V, VA A WHERE A.VID = V.VAL AND %s",
			t.carryPath(), t.cur, cond))
	case ElemEdge:
		t.cur = t.add(fmt.Sprintf("SELECT V.VAL AS VAL%s FROM %s V, EA A WHERE A.EID = V.VAL AND %s",
			t.carryPath(), t.cur, cond))
	default:
		t.cur = t.add(fmt.Sprintf("SELECT V.VAL AS VAL%s FROM %s V WHERE %s",
			t.carryPath(), t.cur, cond))
	}
	return nil
}

// order translates order() / order{key}. The sort happens inside the
// emitted CTE; every downstream template scans its input in order, so
// the ordering survives until a dedup or aggregation. A keyed order
// needs three CTEs — compute the key alongside the element, sort on
// (key, element), then project the key away — because ORDER BY resolves
// against the projected columns only.
func (t *translator) order(s *gremlin.Step) error {
	if t.track && needsPathTracking(t.rest) {
		return fmt.Errorf("translate: order() before a path-dependent step is unsupported")
	}
	if s.KeyExpr == nil {
		t.cur = t.add(fmt.Sprintf("SELECT VAL FROM %s ORDER BY VAL", t.cur))
		t.track = false
		return nil
	}
	key, err := t.renderExpr(s.KeyExpr)
	if err != nil {
		return err
	}
	switch t.typ {
	case ElemVertex:
		t.cur = t.add(fmt.Sprintf("SELECT V.VAL AS VAL, %s AS OKEY FROM %s V, VA A WHERE A.VID = V.VAL",
			key, t.cur))
	case ElemEdge:
		t.cur = t.add(fmt.Sprintf("SELECT V.VAL AS VAL, %s AS OKEY FROM %s V, EA A WHERE A.EID = V.VAL",
			key, t.cur))
	default:
		t.cur = t.add(fmt.Sprintf("SELECT V.VAL AS VAL, %s AS OKEY FROM %s V", key, t.cur))
	}
	t.cur = t.add(fmt.Sprintf("SELECT VAL, OKEY FROM %s ORDER BY OKEY, VAL", t.cur))
	t.cur = t.add(fmt.Sprintf("SELECT VAL FROM %s", t.cur))
	t.track = false
	return nil
}

// group translates groupBy{key}{value} and groupCount{key} into a GROUP
// BY CTE whose VAL packs each group into one list — (key, count) for
// groupCount, (key, sorted values) for groupBy — followed by an ORDER BY
// VAL strip for a deterministic group order.
func (t *translator) group(s *gremlin.Step) error {
	if t.track && needsPathTracking(t.rest) {
		return fmt.Errorf("translate: %v before a path-dependent step is unsupported", s.Kind)
	}
	key, err := t.renderExpr(s.KeyExpr)
	if err != nil {
		return err
	}
	agg := "COUNT(*)"
	if s.Kind == gremlin.StepGroupBy {
		val, err := t.renderExpr(s.ValueExpr)
		if err != nil {
			return err
		}
		agg = fmt.Sprintf("LISTAGG(%s)", val)
	}
	sel := fmt.Sprintf("SELECT (LIST() || %s || %s) AS VAL", key, agg)
	switch t.typ {
	case ElemVertex:
		t.cur = t.add(fmt.Sprintf("%s FROM %s V, VA A WHERE A.VID = V.VAL GROUP BY %s", sel, t.cur, key))
	case ElemEdge:
		t.cur = t.add(fmt.Sprintf("%s FROM %s V, EA A WHERE A.EID = V.VAL GROUP BY %s", sel, t.cur, key))
	default:
		t.cur = t.add(fmt.Sprintf("%s FROM %s V GROUP BY %s", sel, t.cur, key))
	}
	t.cur = t.add(fmt.Sprintf("SELECT VAL FROM %s ORDER BY VAL", t.cur))
	t.typ = ElemValue
	t.track = false
	t.depth = 1
	t.typeHistReset(ElemValue)
	return nil
}

func edgeFilterCond(s *gremlin.Step) (string, error) {
	switch s.Kind {
	case gremlin.StepHas, gremlin.StepFilter:
		if s.Op == "" {
			if s.Key == "label" {
				return "A.LBL IS NOT NULL", nil
			}
			return fmt.Sprintf("JSON_VAL(A.ATTR, %s) IS NOT NULL", lit(s.Key)), nil
		}
		op, err := sqlOp(s.Op)
		if err != nil {
			return "", err
		}
		return edgeKeyCond(s.Key, op, s.Value, "A.ATTR", "A.LBL"), nil
	case gremlin.StepHasNot:
		return fmt.Sprintf("JSON_VAL(A.ATTR, %s) IS NULL", lit(s.Key)), nil
	case gremlin.StepInterval:
		jv := fmt.Sprintf("JSON_VAL(A.ATTR, %s)", lit(s.Key))
		return fmt.Sprintf("%s >= %s AND %s < %s", jv, lit(s.Lo), jv, lit(s.Hi)), nil
	default:
		return "", fmt.Errorf("translate: unsupported edge filter %v", s.Kind)
	}
}

// back translates back(n) / back('name') using the statically known path
// positions (every transform pipe appends exactly one element).
func (t *translator) back(s *gremlin.Step) error {
	if !t.track {
		return fmt.Errorf("translate: internal: back without tracking")
	}
	var targetDepth int
	if s.Name != "" {
		m, ok := t.marks[s.Name]
		if !ok {
			return fmt.Errorf("translate: back(%q) has no matching as(%q)", s.Name, s.Name)
		}
		targetDepth = m.depth
	} else {
		targetDepth = t.depth - s.BackN
	}
	if targetDepth < 1 || targetDepth > t.depth {
		return fmt.Errorf("translate: back target out of range")
	}
	if targetDepth == t.depth {
		return nil // back(0): identity
	}
	drop := t.depth - targetDepth // elements to remove from the full path
	idx := targetDepth - 1        // 0-based index of the target in the full path
	t.cur = t.add(fmt.Sprintf(
		"SELECT (V.PATH || V.VAL)[%d] AS VAL, LIST_TRIM(V.PATH || V.VAL, %d) AS PATH FROM %s V",
		idx, drop+1, t.cur))
	t.depth = targetDepth
	if t.hist != nil && idx < len(t.hist) {
		t.typ = t.hist[idx]
		t.hist = t.hist[:idx+1]
	}
	return nil
}

// ifThenElse splits the stream on an attribute predicate, translates both
// branches, and unions the results (paper Section 4.3's branch handling,
// restricted to simple predicates per Section 4.4).
func (t *translator) ifThenElse(s *gremlin.Step) error {
	if t.typ == ElemValue {
		return fmt.Errorf("translate: ifThenElse on values")
	}
	var cond string
	switch {
	case s.Test == nil && s.TestExpr != nil:
		// General closure test: compiled like an expression filter; the
		// then-branch template below binds the same V/A aliases.
		c, err := t.renderExpr(s.TestExpr)
		if err != nil {
			return err
		}
		cond = c
	case t.typ == ElemVertex:
		c, ok, err := attrCond(&gremlin.Step{Kind: gremlin.StepFilter, Key: s.Test.Key, Op: s.Test.Op, Value: s.Test.Value}, "A.ATTR")
		if err != nil || !ok {
			return fmt.Errorf("translate: unsupported ifThenElse test: %v", err)
		}
		cond = c
	default:
		c, err := edgeFilterCond(&gremlin.Step{Kind: gremlin.StepFilter, Key: s.Test.Key, Op: s.Test.Op, Value: s.Test.Value})
		if err != nil {
			return err
		}
		cond = c
	}

	// The predicate splits the stream; estimate half down each branch and
	// sum the branch outputs at the union.
	savedEst := t.est
	t.est = savedEst * 0.5

	var thenIn string
	if t.typ == ElemVertex {
		thenIn = t.add(fmt.Sprintf("SELECT V.VAL AS VAL%s FROM %s V, VA A WHERE A.VID = V.VAL AND %s",
			t.carryPath(), t.cur, cond))
	} else {
		thenIn = t.add(fmt.Sprintf("SELECT V.VAL AS VAL%s FROM %s V, EA A WHERE A.EID = V.VAL AND %s",
			t.carryPath(), t.cur, cond))
	}
	elseIn := t.add(fmt.Sprintf("SELECT V.VAL AS VAL%s FROM %s V WHERE V.VAL NOT IN (SELECT VAL FROM %s)",
		t.carryPath(), t.cur, thenIn))

	savedDepth, savedType := t.depth, t.typ
	savedHist := append([]ElemType(nil), t.hist...)

	t.cur = thenIn
	if err := t.pipeline(s.Then); err != nil {
		return err
	}
	thenOut, thenDepth, thenType := t.cur, t.depth, t.typ
	thenEst := t.est

	t.cur, t.depth, t.typ = elseIn, savedDepth, savedType
	t.est = savedEst * 0.5
	t.hist = savedHist
	if err := t.pipeline(s.Else); err != nil {
		return err
	}
	elseOut, elseDepth, elseType := t.cur, t.depth, t.typ

	if thenType != elseType || (t.track && thenDepth != elseDepth) {
		return fmt.Errorf("translate: ifThenElse branches diverge (%s depth %d vs %s depth %d)",
			thenType, thenDepth, elseType, elseDepth)
	}
	t.depth, t.typ = thenDepth, thenType
	t.est += thenEst
	t.cur = t.add(fmt.Sprintf("SELECT VAL%s FROM %s UNION ALL SELECT VAL%s FROM %s",
		t.pathSel(), thenOut, t.pathSel(), elseOut))
	return nil
}

// loop translates loop pipes: unrolled by default (fixed depth is known
// statically), or via a recursive CTE over EA when Options.RecursiveLoops
// is set (the paper's fallback strategy).
func (t *translator) loop(steps []gremlin.Step, loopIdx int, s *gremlin.Step) error {
	segment := loopSegment(steps, loopIdx)
	if len(segment) == 0 {
		return fmt.Errorf("translate: loop has an empty segment")
	}
	if s.LoopMax < 1 {
		return fmt.Errorf("translate: loop bound must be positive")
	}
	if t.opts.RecursiveLoops && !t.track && len(segment) == 1 && t.typ == ElemVertex {
		// Advance the estimate for the remaining passes before the
		// recursive CTE is emitted (restored if the fallback unrolls).
		savedEst := t.est
		for pass := 1; pass < s.LoopMax; pass++ {
			t.estimateStep(&segment[0])
		}
		if rc, ok := t.recursiveLoop(&segment[0], s.LoopMax); ok {
			t.cur = rc
			return nil
		}
		t.est = savedEst
	}
	// Unroll: the segment has already run once; repeat LoopMax-1 times.
	for pass := 1; pass < s.LoopMax; pass++ {
		if err := t.pipeline(segment); err != nil {
			return err
		}
	}
	return nil
}

// recursiveLoop emits WITH RECURSIVE-style iteration over the EA table
// for single-step out/in/both segments.
func (t *translator) recursiveLoop(seg *gremlin.Step, max int) (string, bool) {
	var dirs []direction
	switch seg.Kind {
	case gremlin.StepOut:
		dirs = []direction{dirOut}
	case gremlin.StepIn:
		dirs = []direction{dirIn}
	case gremlin.StepBoth:
		dirs = []direction{dirOut, dirIn}
	default:
		return "", false
	}
	labelCond := func() string {
		if len(seg.Labels) == 0 {
			return ""
		}
		quoted := make([]string, len(seg.Labels))
		for i, l := range seg.Labels {
			quoted[i] = lit(l)
		}
		if len(quoted) == 1 {
			return " AND P.LBL = " + quoted[0]
		}
		return " AND P.LBL IN (" + strings.Join(quoted, ", ") + ")"
	}()
	var recTerms []string
	for _, d := range dirs {
		srcCol, dstCol := "INV", "OUTV"
		if d == dirIn {
			srcCol, dstCol = "OUTV", "INV"
		}
		recTerms = append(recTerms, fmt.Sprintf(
			"SELECT P.%s, R.D + 1 FROM R, EA P WHERE P.%s = R.VAL AND R.D < %d%s",
			dstCol, srcCol, max, labelCond))
	}
	// The recursive CTE is inlined as a sub-select so the outer statement
	// remains a single WITH chain.
	// Parenthesize the recursive side so the top-level set operation is
	// exactly base UNION ALL recursive (required by the engine's
	// semi-naive evaluation).
	body := fmt.Sprintf(
		"SELECT VAL FROM (WITH RECURSIVE R(VAL, D) AS (SELECT VAL, 1 FROM %s UNION ALL (%s)) SELECT VAL FROM R WHERE D = %d) X",
		t.cur, strings.Join(recTerms, " UNION ALL "), max)
	return t.add(body), true
}

// uniqueLabels drops duplicate labels, preserving first-seen order.
func uniqueLabels(labels []string) []string {
	if len(labels) < 2 {
		return labels
	}
	seen := make(map[string]bool, len(labels))
	out := labels[:0:0]
	for _, l := range labels {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	return out
}
