package translate

import (
	"strings"
	"testing"

	"sqlgraph/internal/gremlin"
)

// SQL-shape tests for the Table 8 CTE templates on the edge cases the
// differential corpus exercises only by value: empty pipelines, both()
// unions, property filters over spilled labels, and the negated-VID
// soft-delete convention.

func TestEmptyPipelineRejected(t *testing.T) {
	// The parser rejects "g"; an empty step list reaching the translator
	// directly must also fail rather than emit SQL with no source CTE.
	if _, err := Translate(&gremlin.Query{}, fakeSchema{}, Options{}); err == nil {
		t.Fatal("empty query translated, want error")
	}
}

func TestNegatedVIDSoftDeleteFilters(t *testing.T) {
	// Every vertex source must exclude soft-deleted (negated) VIDs.
	for _, q := range []string{
		"g.V",
		"g.V.count()",
		"g.V('name', 'marko')",
		"g.V.has('age', T.gt, 10)",
		"g.V(1, 2).out",
	} {
		sql := tr(t, q, Options{}).SQL
		wants(t, sql, "VID >= 0")
	}
	// Hash-table hops re-check the flag on the adjacency row: a vertex
	// deleted under the paper's soft-delete scheme may still own OPA/IPA
	// rows until Vacuum, and those must not contribute neighbors.
	sql := tr(t, "g.V(1).out.out", Options{ForceHashTables: true}).SQL
	wants(t, sql, "P.VID >= 0")
	// Edge sources have no VID column; the guard must not leak there.
	sql = tr(t, "g.E.count()", Options{}).SQL
	rejects(t, sql, "VID >= 0")
}

func TestBothTemplates(t *testing.T) {
	// both() is the UNION ALL of the two directions; in hash mode that
	// means both the out-tables and the in-tables appear.
	sql := tr(t, "g.V(1).both.out", Options{ForceHashTables: true}).SQL
	wants(t, sql, "UNION ALL", "OPA", "OSA", "IPA", "ISA")
	// EA mode answers both directions from the adjacency copy, probing
	// INV for out and OUTV for in.
	sql = tr(t, "g.V(1).both", Options{ForceEA: true}).SQL
	wants(t, sql, "UNION ALL", "P.INV = V.VAL", "P.OUTV = V.VAL")
	rejects(t, sql, "OPA", "IPA")
	// bothE keeps edge ids from both branches.
	sql = tr(t, "g.V(1).bothE", Options{ForceEA: true}).SQL
	wants(t, sql, "P.EID", "UNION ALL")
	// Duplicate labels are a membership test, not a multiplier: the
	// two-label IN list collapses to a single equality.
	sql = tr(t, "g.V(1).out('knows', 'knows').in", Options{ForceHashTables: true}).SQL
	if strings.Count(sql, "= 'knows'") != 1 {
		t.Fatalf("duplicate label not collapsed:\n%s", sql)
	}
}

func TestSpilledLabelTemplates(t *testing.T) {
	// A labeled hash hop must consult the primary column triad AND the
	// secondary (spill) table: multi-valued cells store a list id whose
	// members live in OSA/ISA rows, COALESCEd back over the direct value.
	sql := tr(t, "g.V(1).out('knows').out('knows')", Options{ForceHashTables: true}).SQL
	wants(t, sql,
		"LEFT OUTER JOIN OSA",
		"COALESCE(S.VAL, P.VAL) AS VAL",
		"S.VALID",
		"P.LBL1 = 'knows'", // fakeSchema assigns 'knows' to column 1
		"P.VAL1 IS NOT NULL",
	)
	// Property filters after a spilled-label hop apply to the COALESCEd
	// neighbor, not the primary cell: the VA join must reference the CTE
	// that already resolved the spill.
	sql = tr(t, "g.V(1).out('knows').has('age', T.gt, 29).out", Options{ForceHashTables: true}).SQL
	spill := strings.Index(sql, "COALESCE(S.VAL, P.VAL)")
	filter := strings.Index(sql, "JSON_VAL(A.ATTR, 'age') > 29")
	if spill < 0 || filter < 0 || filter < spill {
		t.Fatalf("property filter must follow spill resolution (spill@%d filter@%d):\n%s", spill, filter, sql)
	}
	wants(t, sql, "VA A WHERE A.VID = V.VAL")
	// Unlabeled hop unnests every triad and still resolves spills.
	sql = tr(t, "g.V(1).in.in", Options{ForceHashTables: true}).SQL
	wants(t, sql, "TABLE(VALUES", "LEFT OUTER JOIN ISA")
}

func TestDedupDropsPathColumn(t *testing.T) {
	// dedup() collapses to the element; once it runs, the PATH column is
	// gone and Gremlin's element-level semantics hold even when earlier
	// steps tracked paths.
	sql := tr(t, "g.V(1).out.in.simplePath.dedup().out.count()", Options{}).SQL
	wants(t, sql, "ISSIMPLEPATH", "SELECT DISTINCT VAL")
	rejects(t, sql, "DISTINCT VAL, PATH")
	// A path-dependent step after dedup() has no well-defined
	// representative path; the translator must refuse, not guess.
	err := trErr(t, "g.V(1).out.dedup().out.simplePath", Options{})
	if !strings.Contains(err.Error(), "dedup") {
		t.Fatalf("unexpected error: %v", err)
	}
	err = trErr(t, "g.V(1).as('x').out.dedup().back('x')", Options{})
	if !strings.Contains(err.Error(), "dedup") {
		t.Fatalf("unexpected error: %v", err)
	}
}
