// Package translate compiles side-effect-free Gremlin queries into a
// single SQL statement over the SQLGraph schema, following the CTE
// templates of the paper's Section 4.3 and Table 8. Each pipe maps the
// current result table (a CTE with a VAL column and, when path tracking
// is needed, a PATH column) to a new CTE; the final statement is one
// WITH ... SELECT handed to the relational optimizer in one shot.
package translate

import (
	"errors"
	"fmt"
	"strings"

	"sqlgraph/internal/gremlin"
)

// ErrTailEval marks a closure the translator cannot push into SQL with
// semantics identical to the engine's (today: division or modulo whose
// divisor is not a nonzero numeric literal, where SQL's per-row
// division-by-zero error would depend on data the translator cannot see).
// TranslateWithTail catches it and falls back to translating the prefix,
// leaving the offending step and everything after it for the caller's
// tail executor.
var ErrTailEval = errors.New("translate: closure requires tail evaluation")

// ElemType tracks what the VAL column currently holds.
type ElemType int

// Element types.
const (
	ElemVertex ElemType = iota
	ElemEdge
	ElemValue
)

func (e ElemType) String() string {
	switch e {
	case ElemVertex:
		return "vertex"
	case ElemEdge:
		return "edge"
	default:
		return "value"
	}
}

// Schema describes the physical layout the translator emits against.
type Schema interface {
	OutColumns() int
	InColumns() int
	OutColumnFor(label string) int
	InColumnFor(label string) int
}

// GraphStats exposes graph-level cardinalities. When the Schema value
// also implements it (discovered by type assertion, so translation
// Options — and with them the prepared-query cache key — are unchanged),
// the translator maintains a running frontier estimate and snapshots it
// per emitted CTE into Translation.Hints; the engine's cost-based planner
// folds those hints into join costing, and EXPLAIN ANALYZE reports them
// as est= on cte lines.
type GraphStats interface {
	// VertexCount returns the live vertex count.
	VertexCount() float64
	// EdgeCount returns the live edge count.
	EdgeCount() float64
	// OutFanout estimates the out-edges per frontier vertex matching the
	// label set (empty = all labels); InFanout the in-edge analogue.
	OutFanout(labels []string) float64
	InFanout(labels []string) float64
}

// Hint-model selectivities for predicates the translator cannot cost
// (coarse on purpose: hints are advisory, and the estimate-vs-actual
// corpus pins per-query q-error bounds rather than exact numbers).
const (
	hintSelEq     = 0.1  // attribute equality
	hintSelFilter = 0.25 // any other attribute predicate
)

// Options tune the translation (defaults reproduce the paper's choices).
type Options struct {
	// ForceEA answers every adjacency step from the EA table (the paper's
	// Figure 6 comparison: EA-only path computation).
	ForceEA bool
	// ForceHashTables answers every adjacency step from OPA/OSA + IPA/ISA
	// even for single-lookup queries (Table 4's other side).
	ForceHashTables bool
	// RecursiveLoops translates single-step loop segments into a
	// recursive CTE instead of unrolling (paper Section 4.3's fallback
	// for loops whose depth the engine should iterate).
	RecursiveLoops bool
}

// Translation is the compiled form of a Gremlin query.
type Translation struct {
	SQL      string
	ElemType ElemType
	// Hints maps emitted CTE names to the translator's estimated row
	// counts (nil when the Schema does not implement GraphStats).
	Hints map[string]float64
}

// Translate compiles a parsed Gremlin query.
func Translate(q *gremlin.Query, sch Schema, opts Options) (*Translation, error) {
	return newTranslator(sch, opts).translate(q)
}

// TranslateWithTail compiles q, and when the only obstacle is a closure
// flagged ErrTailEval it retries with the longest translatable prefix,
// returning the untranslated suffix for post-SQL evaluation. A nil tail
// means the whole query compiled. Any other error — including tails the
// executor cannot evaluate (path pipes, back/as, loops, branches) — is
// returned as-is.
func TranslateWithTail(q *gremlin.Query, sch Schema, opts Options) (*Translation, []gremlin.Step, error) {
	tr := newTranslator(sch, opts)
	out, err := tr.translate(q)
	if err == nil {
		return out, nil, nil
	}
	if !errors.Is(err, ErrTailEval) || tr.tailAbs < 1 || tr.tailAbs >= len(q.Steps) {
		return nil, nil, err
	}
	tail := q.Steps[tr.tailAbs:]
	if !tailSupported(tail) {
		return nil, nil, err
	}
	prefix := &gremlin.Query{Text: q.Text, Steps: q.Steps[:tr.tailAbs]}
	out, perr := newTranslator(sch, opts).translate(prefix)
	if perr != nil {
		return nil, nil, err
	}
	return out, tail, nil
}

// tailSupported reports whether every step can be evaluated by the
// post-SQL tail executor: plain stream transforms only — nothing that
// needs path bookkeeping, marks, aggregates or branching.
func tailSupported(steps []gremlin.Step) bool {
	for i := range steps {
		switch steps[i].Kind {
		case gremlin.StepOut, gremlin.StepIn, gremlin.StepBoth,
			gremlin.StepOutE, gremlin.StepInE, gremlin.StepBothE,
			gremlin.StepOutV, gremlin.StepInV, gremlin.StepBothV,
			gremlin.StepID, gremlin.StepLabel, gremlin.StepProperty,
			gremlin.StepHas, gremlin.StepHasNot, gremlin.StepInterval,
			gremlin.StepFilter, gremlin.StepDedup, gremlin.StepRange,
			gremlin.StepCount, gremlin.StepOrder, gremlin.StepGroupBy,
			gremlin.StepGroupCount, gremlin.StepTable, gremlin.StepIterate:
		default:
			return false
		}
	}
	return true
}

func newTranslator(sch Schema, opts Options) *translator {
	tr := &translator{
		sch:     sch,
		opts:    opts,
		marks:   map[string]mark{},
		aggs:    map[string]string{},
		tailAbs: -1,
	}
	if gs, ok := sch.(GraphStats); ok && gs != nil {
		tr.gstats = gs
		tr.hints = map[string]float64{}
	}
	return tr
}

type mark struct {
	depth int // static path position of the marked element
	typ   ElemType
}

type translator struct {
	sch  Schema
	opts Options

	ctes    []cte
	nameSeq int

	cur       string // current CTE name
	typ       ElemType
	track     bool           // path tracking enabled
	rest      []gremlin.Step // steps after the one being translated (innermost pipeline first)
	depth     int            // static number of elements in the full path so far (>=1)
	hist      []ElemType     // element type at each static path position
	marks     map[string]mark
	aggs      map[string]string // aggregate name -> CTE
	traversal int               // total adjacency steps in the query (for the EA optimization)

	gstats GraphStats         // nil = no cardinality hints
	est    float64            // running frontier cardinality estimate
	hints  map[string]float64 // CTE name -> estimate snapshot at add()

	srcConsumed int // filters the source lookup merged (absolute index math)
	plDepth     int // pipeline nesting (1 = top level)
	tailAbs     int // absolute index of the first ErrTailEval step, -1 if none
}

type cte struct {
	name string
	body string
}

func (t *translator) fresh() string {
	t.nameSeq++
	return fmt.Sprintf("T%d", t.nameSeq)
}

func (t *translator) add(body string) string {
	name := t.fresh()
	t.ctes = append(t.ctes, cte{name: name, body: body})
	if t.hints != nil {
		t.hints[name] = t.est
	}
	return name
}

// pathCols renders the projection of the path column for a step that
// appends the current element ("V" is the input alias).
func (t *translator) pathAppend() string {
	return "(V.PATH || V.VAL) AS PATH"
}

// carry renders ", V.PATH AS PATH" style carriers for steps that do not
// move to a new element.
func (t *translator) carryPath() string {
	if !t.track {
		return ""
	}
	return ", V.PATH AS PATH"
}

func (t *translator) extendPath() string {
	if !t.track {
		return ""
	}
	return ", " + t.pathAppend()
}

// needsPathTracking reports whether any pipe requires path bookkeeping.
func needsPathTracking(steps []gremlin.Step) bool {
	for i := range steps {
		switch steps[i].Kind {
		case gremlin.StepPath, gremlin.StepSimplePath, gremlin.StepBack:
			return true
		case gremlin.StepIfThenElse:
			if needsPathTracking(steps[i].Then) || needsPathTracking(steps[i].Else) {
				return true
			}
		}
	}
	return false
}

// countTraversals counts adjacency steps (loop segments count their full
// expansion) to drive the EA-vs-hash-table choice of Section 3.5.
func countTraversals(steps []gremlin.Step) int {
	n := 0
	for i := range steps {
		switch steps[i].Kind {
		case gremlin.StepOut, gremlin.StepIn, gremlin.StepBoth,
			gremlin.StepOutE, gremlin.StepInE, gremlin.StepBothE:
			n++
		case gremlin.StepLoop:
			// The segment already ran once; each extra pass repeats it.
			n += (steps[i].LoopMax - 1) * countTraversals(loopSegment(steps, i))
		case gremlin.StepIfThenElse:
			n += countTraversals(steps[i].Then) + countTraversals(steps[i].Else)
		}
	}
	return n
}

func loopSegment(steps []gremlin.Step, loopIdx int) []gremlin.Step {
	s := &steps[loopIdx]
	if s.Name != "" {
		for j := loopIdx - 1; j >= 0; j-- {
			if steps[j].Kind == gremlin.StepAs && steps[j].Name == s.Name {
				return steps[j+1 : loopIdx]
			}
		}
		return nil
	}
	start := loopIdx - s.BackN
	if start < 0 {
		return nil
	}
	return steps[start:loopIdx]
}

func (t *translator) translate(q *gremlin.Query) (*Translation, error) {
	if len(q.Steps) == 0 {
		return nil, fmt.Errorf("translate: empty query")
	}
	t.track = needsPathTracking(q.Steps)
	t.traversal = countTraversals(q.Steps)

	rest, err := t.source(&q.Steps[0], q.Steps[1:])
	if err != nil {
		return nil, err
	}
	if err := t.pipeline(rest); err != nil {
		return nil, err
	}

	var sb strings.Builder
	if len(t.ctes) == 1 && !t.track {
		sb.WriteString(t.ctes[0].body)
	} else {
		sb.WriteString("WITH ")
		for i, c := range t.ctes {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(c.name)
			sb.WriteString(" AS (")
			sb.WriteString(c.body)
			sb.WriteString(")")
		}
		sb.WriteString(" SELECT VAL FROM ")
		sb.WriteString(t.ctes[len(t.ctes)-1].name)
	}
	return &Translation{
		SQL:      sb.String(),
		ElemType: t.typ,
		Hints:    t.hints,
	}, nil
}

// pipeline translates a run of steps.
func (t *translator) pipeline(steps []gremlin.Step) error {
	outer := t.rest
	t.plDepth++
	defer func() { t.rest = outer; t.plDepth-- }()
	for i := 0; i < len(steps); i++ {
		s := &steps[i]
		// Expose the downstream steps (this pipeline's tail, then the
		// enclosing pipeline's) so steps like dedup() can check whether
		// path tracking is still needed.
		t.rest = append(append([]gremlin.Step{}, steps[i+1:]...), outer...)
		var err error
		if s.Kind == gremlin.StepLoop {
			err = t.loop(steps, i, s)
		} else {
			t.estimateStep(s)
			err = t.step(s)
		}
		if err != nil {
			// Record where the SQL-translatable prefix ends so
			// TranslateWithTail can split the query. Only top-level
			// positions qualify: an ErrTailEval inside a branch or loop
			// body surfaces at the enclosing step, which the tail
			// executor rejects anyway.
			if t.plDepth == 1 && t.tailAbs < 0 && errors.Is(err, ErrTailEval) {
				t.tailAbs = 1 + t.srcConsumed + i
			}
			return err
		}
	}
	return nil
}

// lit renders a Gremlin literal as SQL.
func lit(v any) string {
	switch x := v.(type) {
	case string:
		return "'" + strings.ReplaceAll(x, "'", "''") + "'"
	case bool:
		if x {
			return "TRUE"
		}
		return "FALSE"
	case nil:
		return "NULL"
	default:
		return fmt.Sprint(x)
	}
}

func sqlOp(op gremlin.CmpOp) (string, error) {
	switch op {
	case gremlin.OpEq:
		return "=", nil
	case gremlin.OpNeq:
		return "<>", nil
	case gremlin.OpLt:
		return "<", nil
	case gremlin.OpLte:
		return "<=", nil
	case gremlin.OpGt:
		return ">", nil
	case gremlin.OpGte:
		return ">=", nil
	default:
		return "", fmt.Errorf("translate: unsupported operator %q", op)
	}
}

// source emits the first CTE and returns the remaining steps (merging
// immediately-following attribute filters into the source lookup — the
// GraphQuery rewrite of Section 4.5.1).
func (t *translator) source(s *gremlin.Step, rest []gremlin.Step) ([]gremlin.Step, error) {
	var conds []string
	consumed := 0

	switch s.Kind {
	case gremlin.StepV:
		t.typ = ElemVertex
		if t.gstats != nil {
			t.est = t.gstats.VertexCount()
			if len(s.StartIDs) > 0 {
				t.est = float64(len(s.StartIDs))
			}
			if s.StartKey != "" {
				t.est *= hintSelEq
			}
		}
		conds = append(conds, "VID >= 0")
		if len(s.StartIDs) > 0 {
			ids := make([]string, len(s.StartIDs))
			for i, id := range s.StartIDs {
				ids[i] = fmt.Sprint(id)
			}
			conds = append(conds, "VID IN ("+strings.Join(ids, ", ")+")")
		}
		if s.StartKey != "" {
			conds = append(conds, fmt.Sprintf("JSON_VAL(ATTR, %s) = %s", lit(s.StartKey), lit(s.StartVal)))
		}
		// GraphQuery merge: fold subsequent vertex attribute filters in.
		for consumed < len(rest) {
			cond, ok, err := attrCond(&rest[consumed], "ATTR")
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			conds = append(conds, cond)
			if t.gstats != nil {
				t.est *= hintSelFilter
			}
			consumed++
		}
		sel := "SELECT VID AS VAL"
		if t.track {
			sel += ", LIST() AS PATH"
		}
		t.cur = t.add(sel + " FROM VA WHERE " + strings.Join(conds, " AND "))
	case gremlin.StepE:
		t.typ = ElemEdge
		if t.gstats != nil {
			t.est = t.gstats.EdgeCount()
			if len(s.StartIDs) > 0 {
				t.est = float64(len(s.StartIDs))
			}
			if s.StartKey != "" {
				t.est *= hintSelEq
			}
		}
		if len(s.StartIDs) > 0 {
			ids := make([]string, len(s.StartIDs))
			for i, id := range s.StartIDs {
				ids[i] = fmt.Sprint(id)
			}
			conds = append(conds, "EID IN ("+strings.Join(ids, ", ")+")")
		}
		if s.StartKey != "" {
			conds = append(conds, edgeKeyCond(s.StartKey, "=", s.StartVal, "ATTR", "LBL"))
		}
		for consumed < len(rest) {
			cond, ok, err := edgeAttrCond(&rest[consumed])
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			conds = append(conds, cond)
			if t.gstats != nil {
				t.est *= hintSelFilter
			}
			consumed++
		}
		sel := "SELECT EID AS VAL"
		if t.track {
			sel += ", LIST() AS PATH"
		}
		body := sel + " FROM EA"
		if len(conds) > 0 {
			body += " WHERE " + strings.Join(conds, " AND ")
		}
		t.cur = t.add(body)
	default:
		return nil, fmt.Errorf("translate: query must start with V or E")
	}
	t.depth = 1
	t.hist = []ElemType{t.typ}
	t.srcConsumed = consumed
	return rest[consumed:], nil
}

// attrCond renders a vertex attribute filter step as a condition over the
// given JSON column, or reports it cannot.
func attrCond(s *gremlin.Step, attrCol string) (string, bool, error) {
	switch s.Kind {
	case gremlin.StepHas, gremlin.StepFilter:
		if s.Kind == gremlin.StepFilter && s.Key == "" {
			// General closure filter: not a mergeable simple predicate.
			return "", false, nil
		}
		jv := fmt.Sprintf("JSON_VAL(%s, %s)", attrCol, lit(s.Key))
		if s.Op == "" {
			return jv + " IS NOT NULL", true, nil
		}
		op, err := sqlOp(s.Op)
		if err != nil {
			return "", false, err
		}
		return fmt.Sprintf("%s %s %s", jv, op, lit(s.Value)), true, nil
	case gremlin.StepHasNot:
		return fmt.Sprintf("JSON_VAL(%s, %s) IS NULL", attrCol, lit(s.Key)), true, nil
	case gremlin.StepInterval:
		jv := fmt.Sprintf("JSON_VAL(%s, %s)", attrCol, lit(s.Key))
		return fmt.Sprintf("%s >= %s AND %s < %s", jv, lit(s.Lo), jv, lit(s.Hi)), true, nil
	default:
		return "", false, nil
	}
}

// edgeAttrCond is attrCond for edges, where the pseudo-attribute "label"
// maps to the LBL column.
func edgeAttrCond(s *gremlin.Step) (string, bool, error) {
	switch s.Kind {
	case gremlin.StepHas, gremlin.StepFilter:
		if s.Kind == gremlin.StepFilter && s.Key == "" {
			return "", false, nil
		}
		if s.Op == "" {
			if s.Key == "label" {
				return "LBL IS NOT NULL", true, nil
			}
			return fmt.Sprintf("JSON_VAL(ATTR, %s) IS NOT NULL", lit(s.Key)), true, nil
		}
		op, err := sqlOp(s.Op)
		if err != nil {
			return "", false, err
		}
		return edgeKeyCond(s.Key, op, s.Value, "ATTR", "LBL"), true, nil
	case gremlin.StepHasNot:
		return fmt.Sprintf("JSON_VAL(ATTR, %s) IS NULL", lit(s.Key)), true, nil
	case gremlin.StepInterval:
		jv := fmt.Sprintf("JSON_VAL(ATTR, %s)", lit(s.Key))
		return fmt.Sprintf("%s >= %s AND %s < %s", jv, lit(s.Lo), jv, lit(s.Hi)), true, nil
	default:
		return "", false, nil
	}
}

func edgeKeyCond(key, op string, val any, attrCol, lblCol string) string {
	if key == "label" {
		return fmt.Sprintf("%s %s %s", lblCol, op, lit(val))
	}
	return fmt.Sprintf("JSON_VAL(%s, %s) %s %s", attrCol, lit(key), op, lit(val))
}
