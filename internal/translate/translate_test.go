package translate

import (
	"strings"
	"testing"

	"sqlgraph/internal/gremlin"
)

// fakeSchema is a minimal Schema with 3 out and 2 in columns.
type fakeSchema struct{}

func (fakeSchema) OutColumns() int { return 3 }
func (fakeSchema) InColumns() int  { return 2 }
func (fakeSchema) OutColumnFor(label string) int {
	if label == "knows" {
		return 1
	}
	return 0
}
func (fakeSchema) InColumnFor(label string) int { return 0 }

func tr(t *testing.T, query string, opts Options) *Translation {
	t.Helper()
	q, err := gremlin.Parse(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	out, err := Translate(q, fakeSchema{}, opts)
	if err != nil {
		t.Fatalf("translate %q: %v", query, err)
	}
	return out
}

func trErr(t *testing.T, query string, opts Options) error {
	t.Helper()
	q, err := gremlin.Parse(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	_, err = Translate(q, fakeSchema{}, opts)
	if err == nil {
		t.Fatalf("translate %q succeeded, want error", query)
	}
	return err
}

func wants(t *testing.T, sql string, fragments ...string) {
	t.Helper()
	for _, f := range fragments {
		if !strings.Contains(sql, f) {
			t.Fatalf("missing %q in:\n%s", f, sql)
		}
	}
}

func rejects(t *testing.T, sql string, fragments ...string) {
	t.Helper()
	for _, f := range fragments {
		if strings.Contains(sql, f) {
			t.Fatalf("unexpected %q in:\n%s", f, sql)
		}
	}
}

func TestSourceTemplates(t *testing.T) {
	wants(t, tr(t, "g.V", Options{}).SQL, "SELECT VID AS VAL FROM VA WHERE VID >= 0")
	wants(t, tr(t, "g.V(7)", Options{}).SQL, "VID IN (7)")
	wants(t, tr(t, "g.V(1, 2)", Options{}).SQL, "VID IN (1, 2)")
	wants(t, tr(t, "g.V('URI', 'x')", Options{}).SQL, "JSON_VAL(ATTR, 'URI') = 'x'")
	wants(t, tr(t, "g.E", Options{}).SQL, "SELECT EID AS VAL FROM EA")
	wants(t, tr(t, "g.E(5)", Options{}).SQL, "EID IN (5)")
}

func TestGraphQueryMerge(t *testing.T) {
	// Filters directly after the source merge into its WHERE clause
	// (Section 4.5.1's GraphQuery rewrite).
	sql := tr(t, "g.V.has('a', 1).hasNot('b').filter{it.c > 2}.count()", Options{}).SQL
	wants(t, sql,
		"JSON_VAL(ATTR, 'a') = 1",
		"JSON_VAL(ATTR, 'b') IS NULL",
		"JSON_VAL(ATTR, 'c') > 2")
	// All three conditions must be in the FIRST cte (a single VA scan).
	first := sql[:strings.Index(sql, "), ")]
	wants(t, first, "'a'", "'b'", "'c'")
}

func TestSingleHopUsesEA(t *testing.T) {
	sql := tr(t, "g.V(1).out('knows')", Options{}).SQL
	wants(t, sql, "EA P", "P.INV = V.VAL", "P.LBL = 'knows'")
	rejects(t, sql, "OPA")

	sql = tr(t, "g.V(1).in('knows')", Options{}).SQL
	wants(t, sql, "P.OUTV = V.VAL")

	sql = tr(t, "g.V(1).outE", Options{}).SQL
	wants(t, sql, "SELECT P.EID AS VAL")
}

func TestMultiHopUsesHashTables(t *testing.T) {
	sql := tr(t, "g.V(1).out('knows').out('knows')", Options{}).SQL
	// knows hashes to column 1 in the fake schema.
	wants(t, sql, "OPA P", "P.LBL1 = 'knows'", "P.VAL1 IS NOT NULL",
		"LEFT OUTER JOIN OSA S ON P.VAL = S.VALID", "COALESCE(S.VAL, P.VAL)",
		"P.VID >= 0")
	sql = tr(t, "g.V(1).in('x').in('x')", Options{}).SQL
	wants(t, sql, "IPA P", "LEFT OUTER JOIN ISA")
}

func TestUnlabeledHopUnnestsAllColumns(t *testing.T) {
	sql := tr(t, "g.V(1).out.out", Options{}).SQL
	wants(t, sql, "TABLE(VALUES(P.VAL0), (P.VAL1), (P.VAL2)) AS T(VAL)", "T.VAL IS NOT NULL")
	// In direction has 2 columns.
	sql = tr(t, "g.V(1).in.in", Options{}).SQL
	wants(t, sql, "TABLE(VALUES(P.VAL0), (P.VAL1)) AS T(VAL)")
}

func TestBothUnionsDirections(t *testing.T) {
	sql := tr(t, "g.V(1).both.both", Options{}).SQL
	wants(t, sql, "OPA", "IPA", "UNION ALL")
}

func TestEdgePipesOverHashTables(t *testing.T) {
	sql := tr(t, "g.V(1).out.outE('knows')", Options{}).SQL
	wants(t, sql, "P.EID1 AS EID", "COALESCE(S.EID, P.EID)")
}

func TestEdgeEndpointTemplates(t *testing.T) {
	// Gremlin outV = source = EA.INV in the paper's column naming.
	wants(t, tr(t, "g.E(5).outV", Options{}).SQL, "SELECT P.INV AS VAL")
	wants(t, tr(t, "g.E(5).inV", Options{}).SQL, "SELECT P.OUTV AS VAL")
	wants(t, tr(t, "g.E(5).bothV", Options{}).SQL, "TABLE(VALUES(P.INV), (P.OUTV))")
}

func TestFilterTemplates(t *testing.T) {
	sql := tr(t, "g.V(1).out.has('age', T.gt, 29)", Options{}).SQL
	wants(t, sql, "VA A WHERE A.VID = V.VAL", "JSON_VAL(A.ATTR, 'age') > 29")
	sql = tr(t, "g.E(1).has('weight', 0.5)", Options{}).SQL
	wants(t, sql, "JSON_VAL(ATTR, 'weight') = 0.5")
	sql = tr(t, "g.V(1).outE.has('label', 'knows')", Options{}).SQL
	wants(t, sql, "A.LBL = 'knows'")
	sql = tr(t, "g.V(1).out.interval('age', 10, 20)", Options{}).SQL
	wants(t, sql, ">= 10", "< 20")
}

func TestValueFilter(t *testing.T) {
	sql := tr(t, "g.V(1).out.name.filter{it.x == 'y'}", Options{})
	_ = sql
	// Property access then value comparison compares VAL directly...
	// actually a value filter ignores the key; ensure it translates.
	wants(t, sql.SQL, "V.VAL = 'y'")
}

func TestDedupCountRange(t *testing.T) {
	sql := tr(t, "g.V.out.out.dedup().count()", Options{}).SQL
	wants(t, sql, "SELECT DISTINCT VAL", "SELECT COUNT(*) AS VAL")
	sql = tr(t, "g.V.range(5, 14)", Options{}).SQL
	wants(t, sql, "LIMIT 10 OFFSET 5")
}

func TestPathTracking(t *testing.T) {
	out := tr(t, "g.V(1).out.out.path", Options{})
	wants(t, out.SQL, "LIST() AS PATH", "(V.PATH || V.VAL) AS PATH", "SELECT (V.PATH || V.VAL) AS VAL")
	if out.ElemType != ElemValue {
		t.Fatalf("path elem type = %v", out.ElemType)
	}
	sql := tr(t, "g.V(1).out.in.simplePath", Options{}).SQL
	wants(t, sql, "ISSIMPLEPATH(V.PATH || V.VAL) = 1")
}

func TestBackTranslation(t *testing.T) {
	sql := tr(t, "g.V.as('x').out('knows').back('x')", Options{}).SQL
	wants(t, sql, "(V.PATH || V.VAL)[0]", "LIST_TRIM(V.PATH || V.VAL, 2)")
	sql = tr(t, "g.V.out('knows').out('knows').back(1)", Options{}).SQL
	wants(t, sql, "(V.PATH || V.VAL)[1]")
	// back past the start fails.
	trErr(t, "g.V.back(3)", Options{})
	trErr(t, "g.V.back('nothing')", Options{})
}

func TestAggregateExceptRetain(t *testing.T) {
	sql := tr(t, "g.V.out('knows').aggregate(x).back(1).out.except(x)", Options{}).SQL
	wants(t, sql, "VAL NOT IN (SELECT VAL FROM")
	sql = tr(t, "g.V.out('knows').aggregate(x).back(1).out.retain(x)", Options{}).SQL
	wants(t, sql, "VAL IN (SELECT VAL FROM")
	trErr(t, "g.V.except(never)", Options{})
}

func TestIfThenElseTemplate(t *testing.T) {
	sql := tr(t, "g.V.ifThenElse{it.lang == 'java'}{it.in('x')}{it.out('x')}.count()", Options{}).SQL
	wants(t, sql, "JSON_VAL(A.ATTR, 'lang') = 'java'", "NOT IN (SELECT VAL FROM", "UNION ALL")
	// Branches ending in different element types are rejected.
	trErr(t, "g.V.ifThenElse{it.a == 1}{it.outE}{it.out}", Options{})
}

func TestLoopUnrolled(t *testing.T) {
	sql := tr(t, "g.V(1).as('s').out('knows').loop('s'){it.loops < 3}.count()", Options{}).SQL
	// Three traversal rounds -> three OPA references.
	if strings.Count(sql, "OPA") != 3 {
		t.Fatalf("expected 3 unrolled OPA hops:\n%s", sql)
	}
}

func TestLoopRecursive(t *testing.T) {
	sql := tr(t, "g.V(1).as('s').out('knows').loop('s'){it.loops < 4}.count()", Options{RecursiveLoops: true}).SQL
	wants(t, sql, "WITH RECURSIVE R(VAL, D)", "R.D + 1", "D = 4")
}

func TestForceOptions(t *testing.T) {
	sql := tr(t, "g.V(1).out('knows')", Options{ForceHashTables: true}).SQL
	wants(t, sql, "OPA")
	rejects(t, sql, "EA P")
	sql = tr(t, "g.V(1).out('knows').out('knows')", Options{ForceEA: true}).SQL
	wants(t, sql, "EA P")
	rejects(t, sql, "OPA")
}

func TestSideEffectPipesIdentity(t *testing.T) {
	a := tr(t, "g.V.out('knows').count()", Options{}).SQL
	b := tr(t, "g.V.out('knows').table(t1).iterate().count()", Options{}).SQL
	if a != b {
		t.Fatalf("side-effect pipes changed the translation:\n%s\nvs\n%s", a, b)
	}
}

func TestErrorCases(t *testing.T) {
	trErr(t, "g.E(1).out", Options{})                             // adjacency on edges
	trErr(t, "g.V(1).outV", Options{})                            // endpoints on vertices
	trErr(t, "g.V(1).id.out", Options{})                          // traversal on values... id keeps VAL but type=value
	trErr(t, "g.V(1).label", Options{})                           // label on vertices
	trErr(t, "g.V(1).id.name", Options{})                         // property on values
	trErr(t, "g.V.ifThenElse{it.a == 1}{it.path}{it}", Options{}) // unsupported branch shape
}

func TestStringEscaping(t *testing.T) {
	sql := tr(t, `g.V.has('k', 'O\'Brien')`, Options{}).SQL
	wants(t, sql, "'O''Brien'")
}

func TestLabelPipe(t *testing.T) {
	out := tr(t, "g.E(5).label", Options{})
	wants(t, out.SQL, "SELECT P.LBL AS VAL")
	if out.ElemType != ElemValue {
		t.Fatalf("label type = %v", out.ElemType)
	}
}

func TestPropertyPipe(t *testing.T) {
	sql := tr(t, "g.V(1).name", Options{}).SQL
	wants(t, sql, "JSON_VAL(A.ATTR, 'name')", "IS NOT NULL")
	sql = tr(t, "g.E(5).weight", Options{}).SQL
	wants(t, sql, "EA A", "JSON_VAL(A.ATTR, 'weight')")
}
