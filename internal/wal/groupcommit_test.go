package wal

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sqlgraph/internal/faultinject"
)

// TestGroupCommitConcurrentWriters is the -race durability contract: N
// writers append and commit concurrently through the accumulation
// window, every Commit return means the record's LSN is covered by a
// durable flush, and recovery sees every record in LSN order.
func TestGroupCommitConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	l.EnableGroupCommit(GroupCommit{MaxDelay: 500 * time.Microsecond, MaxBatch: 16})

	var flushes atomic.Int64
	l.SetSyncObserver(func(time.Duration, int) { flushes.Add(1) })

	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				lsn, err := l.Append(Record{Op: OpAddVertex, ID: int64(w*perWriter + i)})
				if err != nil {
					errs <- err
					return
				}
				if _, err := l.Commit(lsn); err != nil {
					errs <- err
					return
				}
				if durable := l.DurableLSN(); durable < lsn {
					errs <- errors.New("Commit returned with DurableLSN behind the committed record")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	total := int64(writers * perWriter)
	if got := flushes.Load(); got >= total {
		t.Fatalf("group commit did no amortization: %d flushes for %d commits", got, total)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(st.Records)) != total {
		t.Fatalf("recovered %d records, want %d", len(st.Records), total)
	}
	for i, r := range st.Records {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d, want consecutive from 1", i, r.LSN)
		}
	}
}

// TestGroupCommitKillMidBatchFsync crashes the log partway through a
// batched flush: committers racing that flush either return durable or
// fail with the injected error, and recovery yields a consecutive-LSN
// prefix — never a gap, never a torn mid-log record accepted as valid.
func TestGroupCommitKillMidBatchFsync(t *testing.T) {
	for _, limit := range []int{0, 1, 37, 150, 400} {
		dir := t.TempDir()
		l, _, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		l.EnableGroupCommit(GroupCommit{MaxDelay: 200 * time.Microsecond, MaxBatch: 8})
		l.SetWriteHook(faultinject.ByteLimit(limit))

		const writers, perWriter = 4, 20
		var wg sync.WaitGroup
		var durableMax atomic.Uint64
		var failed atomic.Int64
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWriter; i++ {
					lsn, err := l.Append(Record{Op: OpAddVertex, ID: int64(w*perWriter + i)})
					if err != nil {
						failed.Add(1)
						return
					}
					if _, err := l.Commit(lsn); err != nil {
						failed.Add(1)
						return
					}
					// This record is promised durable; remember the highest
					// such promise to check against recovery.
					for {
						cur := durableMax.Load()
						if lsn <= cur || durableMax.CompareAndSwap(cur, lsn) {
							break
						}
					}
				}
			}(w)
		}
		wg.Wait()
		if failed.Load() == 0 {
			t.Fatalf("limit %d: no writer observed the injected crash", limit)
		}
		// The crashed log is abandoned, like a dead process.
		st, err := Recover(dir)
		if err != nil {
			t.Fatalf("limit %d: recover: %v", limit, err)
		}
		for i, r := range st.Records {
			if r.LSN != uint64(i+1) {
				t.Fatalf("limit %d: record %d has LSN %d, want consecutive prefix", limit, i, r.LSN)
			}
		}
		if promised := durableMax.Load(); uint64(len(st.Records)) < promised {
			t.Fatalf("limit %d: Commit promised durability through LSN %d but only %d records recovered",
				limit, promised, len(st.Records))
		}
	}
}

// TestCommitPiggybacksOnCoveringFlush pins the cross-writer amortization
// of the *synchronous* pipeline: a flush led by one committer covers
// every record appended before it, so the other committers return
// without a second fsync.
func TestCommitPiggybacksOnCoveringFlush(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var fsyncs atomic.Int64
	l.SetSyncObserver(func(time.Duration, int) { fsyncs.Add(1) })

	lsn1, err := l.Append(Record{Op: OpAddVertex, ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	lsn2, err := l.Append(Record{Op: OpAddVertex, ID: 2})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := l.Commit(lsn2)
	if err != nil {
		t.Fatal(err)
	}
	if batch != 2 {
		t.Fatalf("leading flush covered %d records, want 2", batch)
	}
	if _, err := l.Commit(lsn1); err != nil {
		t.Fatal(err)
	}
	if got := fsyncs.Load(); got != 1 {
		t.Fatalf("two commits cost %d fsyncs, want 1", got)
	}
	if l.DurableLSN() != lsn2 {
		t.Fatalf("DurableLSN = %d, want %d", l.DurableLSN(), lsn2)
	}
}

// TestGroupCommitWindowBatches drives sequential commits through a wide
// window and checks the flusher actually accumulates them rather than
// flushing one-by-one.
func TestGroupCommitWindowBatches(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	l.EnableGroupCommit(GroupCommit{MaxDelay: 5 * time.Millisecond, MaxBatch: 1024})
	var fsyncs atomic.Int64
	l.SetSyncObserver(func(time.Duration, int) { fsyncs.Add(1) })

	const n = 12
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lsn, err := l.Append(Record{Op: OpAddVertex, ID: int64(i)})
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := l.Commit(lsn); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if got := fsyncs.Load(); got > n/2 {
		t.Fatalf("window flushed %d times for %d concurrent commits", got, n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if st, err := Recover(dir); err != nil || len(st.Records) != n {
		t.Fatalf("recovered %d records (err=%v), want %d", len(st.Records), err, n)
	}
}

// TestGroupCommitMaxBatchEarlyWake: with a long window but a small batch
// cap, hitting the cap flushes early instead of waiting out the delay.
func TestGroupCommitMaxBatchEarlyWake(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.EnableGroupCommit(GroupCommit{MaxDelay: 10 * time.Second, MaxBatch: 4})

	var lastLSN uint64
	for i := 0; i < 4; i++ {
		lsn, err := l.Append(Record{Op: OpAddVertex, ID: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		lastLSN = lsn
	}
	done := make(chan error, 1)
	go func() {
		_, err := l.Commit(lastLSN)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Commit did not return: MaxBatch early wake never fired")
	}
	if l.DurableLSN() < lastLSN {
		t.Fatalf("DurableLSN = %d after full batch, want >= %d", l.DurableLSN(), lastLSN)
	}
}
