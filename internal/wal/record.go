// Package wal implements the durability substrate for the graph store: a
// binary write-ahead log of logical graph mutations plus periodic
// snapshots of the full relational catalog.
//
// The paper's hybrid schema deliberately duplicates adjacency between EA
// and the OPA/IPA hash tables, and every update runs as a multi-table
// stored procedure (Section 4.5.2). Logging the *logical* operation —
// rather than physical table changes — keeps records small and makes
// recovery independent of row ids and hash-table layout: replay simply
// re-runs the stored procedures, which rebuild every redundant
// representation consistently.
//
// Log format: a sequence of frames, each
//
//	[4-byte little-endian payload length][4-byte CRC32 (IEEE) of payload][payload]
//
// The payload is a varint LSN, an opcode byte, and opcode-specific fields
// (zigzag varints for ids, length-prefixed strings for labels/keys/JSON).
// LSNs increase by one per record. Recovery truncates a torn final frame
// (partial write at the tail) but treats an invalid frame followed by
// valid data as corruption.
package wal

import (
	"encoding/binary"
	"fmt"
)

// OpKind enumerates the logical graph mutations the log records. The
// values are part of the on-disk format; never renumber them.
type OpKind uint8

// Opcodes.
const (
	OpAddVertex OpKind = iota + 1
	OpAddEdge
	OpRemoveEdge
	OpRemoveVertex
	OpSetVertexAttr
	OpRemoveVertexAttr
	OpSetEdgeAttr
	OpRemoveEdgeAttr
	OpVacuum
)

// OpHeartbeat is a wire-only opcode: replication streams emit it while
// idle so followers learn the primary's current LSN and that the link is
// alive. Record.LSN carries the primary's last assigned LSN; heartbeats
// are never written to a log file and never applied.
const OpHeartbeat OpKind = 255

// String returns the opcode's name.
func (op OpKind) String() string {
	switch op {
	case OpAddVertex:
		return "AddVertex"
	case OpAddEdge:
		return "AddEdge"
	case OpRemoveEdge:
		return "RemoveEdge"
	case OpRemoveVertex:
		return "RemoveVertex"
	case OpSetVertexAttr:
		return "SetVertexAttr"
	case OpRemoveVertexAttr:
		return "RemoveVertexAttr"
	case OpSetEdgeAttr:
		return "SetEdgeAttr"
	case OpRemoveEdgeAttr:
		return "RemoveEdgeAttr"
	case OpVacuum:
		return "Vacuum"
	case OpHeartbeat:
		return "Heartbeat"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(op))
	}
}

// Record is one logical graph mutation. Field usage by opcode:
//
//	AddVertex                  ID, Doc (attribute JSON object)
//	AddEdge                    ID, Out, In, Label, Doc
//	RemoveEdge, RemoveVertex   ID
//	Set{Vertex,Edge}Attr       ID, Key, Doc (the value wrapped as {"v": ...})
//	Remove{Vertex,Edge}Attr    ID, Key
//	Vacuum                     —
type Record struct {
	LSN     uint64
	Op      OpKind
	ID      int64
	Out, In int64
	Label   string
	Key     string
	Doc     string
}

func appendZigzag(b []byte, v int64) []byte {
	return binary.AppendUvarint(b, uint64((v<<1)^(v>>63)))
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// encodePayload appends the record's payload (frame header excluded).
func (r *Record) encodePayload(b []byte) []byte {
	b = binary.AppendUvarint(b, r.LSN)
	b = append(b, byte(r.Op))
	switch r.Op {
	case OpAddVertex:
		b = appendZigzag(b, r.ID)
		b = appendString(b, r.Doc)
	case OpAddEdge:
		b = appendZigzag(b, r.ID)
		b = appendZigzag(b, r.Out)
		b = appendZigzag(b, r.In)
		b = appendString(b, r.Label)
		b = appendString(b, r.Doc)
	case OpRemoveEdge, OpRemoveVertex:
		b = appendZigzag(b, r.ID)
	case OpSetVertexAttr, OpSetEdgeAttr:
		b = appendZigzag(b, r.ID)
		b = appendString(b, r.Key)
		b = appendString(b, r.Doc)
	case OpRemoveVertexAttr, OpRemoveEdgeAttr:
		b = appendZigzag(b, r.ID)
		b = appendString(b, r.Key)
	case OpVacuum, OpHeartbeat:
	}
	return b
}

// byteReader decodes the varint/string primitives with bounds checks; any
// overrun or malformed varint sets bad and yields zero values, so decoders
// are total functions over arbitrary bytes (the recovery fuzzer feeds them
// garbage).
type byteReader struct {
	b   []byte
	off int
	bad bool
}

func (r *byteReader) uvarint() uint64 {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.bad = true
		return 0
	}
	r.off += n
	return v
}

func (r *byteReader) zigzag() int64 {
	u := r.uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

func (r *byteReader) byte() byte {
	if r.off >= len(r.b) {
		r.bad = true
		return 0
	}
	c := r.b[r.off]
	r.off++
	return c
}

func (r *byteReader) str() string {
	n := r.uvarint()
	if r.bad || n > uint64(len(r.b)-r.off) {
		r.bad = true
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// decodeRecord parses one payload. The whole payload must be consumed.
func decodeRecord(p []byte) (Record, error) {
	r := &byteReader{b: p}
	var rec Record
	rec.LSN = r.uvarint()
	rec.Op = OpKind(r.byte())
	switch rec.Op {
	case OpAddVertex:
		rec.ID = r.zigzag()
		rec.Doc = r.str()
	case OpAddEdge:
		rec.ID = r.zigzag()
		rec.Out = r.zigzag()
		rec.In = r.zigzag()
		rec.Label = r.str()
		rec.Doc = r.str()
	case OpRemoveEdge, OpRemoveVertex:
		rec.ID = r.zigzag()
	case OpSetVertexAttr, OpSetEdgeAttr:
		rec.ID = r.zigzag()
		rec.Key = r.str()
		rec.Doc = r.str()
	case OpRemoveVertexAttr, OpRemoveEdgeAttr:
		rec.ID = r.zigzag()
		rec.Key = r.str()
	case OpVacuum, OpHeartbeat:
	default:
		return rec, fmt.Errorf("wal: unknown opcode %d", uint8(rec.Op))
	}
	if r.bad {
		return rec, fmt.Errorf("wal: truncated %s payload", rec.Op)
	}
	if r.off != len(p) {
		return rec, fmt.Errorf("wal: %d trailing bytes after %s payload", len(p)-r.off, rec.Op)
	}
	return rec, nil
}
