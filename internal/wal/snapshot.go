package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sort"

	"sqlgraph/internal/rel"
	"sqlgraph/internal/sqljson"
)

// Snapshot is a full dump of the store: configuration, the label-to-column
// assignments (which must survive restarts, or recovered adjacency rows
// would disagree with the column the translator probes), the list-id
// allocator, and every row of every table. The file is written atomically
// (temp + rename) and carries a trailing CRC over the whole payload, so a
// crash mid-snapshot leaves the previous snapshot intact and a damaged
// file is detected rather than loaded.
type Snapshot struct {
	// LastLSN is the last log record whose effects the dump includes;
	// recovery replays only records after it.
	LastLSN    uint64
	OutCols    int
	InCols     int
	Coloring   int
	DeleteMode int
	NextLID    int64
	OutAssign  map[string]int
	InAssign   map[string]int
	Tables     map[string][][]rel.Value
}

const snapMagic = "SQLGSNP1"

// Value tags of the snapshot row codec.
const (
	tagNull byte = iota
	tagBool
	tagInt
	tagFloat
	tagString
	tagJSON
	tagList
)

func appendValue(b []byte, v rel.Value) ([]byte, error) {
	switch v.Kind() {
	case rel.KindNull:
		return append(b, tagNull), nil
	case rel.KindBool:
		b = append(b, tagBool)
		if v.Bool() {
			return append(b, 1), nil
		}
		return append(b, 0), nil
	case rel.KindInt:
		return appendZigzag(append(b, tagInt), v.Int()), nil
	case rel.KindFloat:
		b = append(b, tagFloat)
		return binary.LittleEndian.AppendUint64(b, math.Float64bits(v.Float())), nil
	case rel.KindString:
		return appendString(append(b, tagString), v.Str()), nil
	case rel.KindJSON:
		return appendString(append(b, tagJSON), v.JSON().String()), nil
	case rel.KindList:
		list := v.List()
		b = binary.AppendUvarint(append(b, tagList), uint64(len(list)))
		var err error
		for _, e := range list {
			if b, err = appendValue(b, e); err != nil {
				return nil, err
			}
		}
		return b, nil
	default:
		return nil, fmt.Errorf("wal: snapshot: unsupported value kind %v", v.Kind())
	}
}

func (r *byteReader) value() rel.Value {
	switch r.byte() {
	case tagNull:
		return rel.Null
	case tagBool:
		return rel.NewBool(r.byte() != 0)
	case tagInt:
		return rel.NewInt(r.zigzag())
	case tagFloat:
		if len(r.b)-r.off < 8 {
			r.bad = true
			return rel.Null
		}
		bits := binary.LittleEndian.Uint64(r.b[r.off:])
		r.off += 8
		return rel.NewFloat(math.Float64frombits(bits))
	case tagString:
		return rel.NewString(r.str())
	case tagJSON:
		s := r.str()
		if r.bad {
			return rel.Null
		}
		doc, err := sqljson.Parse(s)
		if err != nil {
			r.bad = true
			return rel.Null
		}
		return rel.NewJSON(doc)
	case tagList:
		n := r.uvarint()
		if r.bad || n > uint64(len(r.b)-r.off) {
			r.bad = true
			return rel.Null
		}
		list := make([]rel.Value, 0, n)
		for i := uint64(0); i < n && !r.bad; i++ {
			list = append(list, r.value())
		}
		return rel.NewList(list)
	default:
		r.bad = true
		return rel.Null
	}
}

func appendAssign(b []byte, m map[string]int) []byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b = binary.AppendUvarint(b, uint64(len(keys)))
	for _, k := range keys {
		b = appendString(b, k)
		b = binary.AppendUvarint(b, uint64(m[k]))
	}
	return b
}

func (r *byteReader) assign() map[string]int {
	n := r.uvarint()
	if r.bad || n > uint64(len(r.b)-r.off) {
		r.bad = true
		return nil
	}
	m := make(map[string]int, n)
	for i := uint64(0); i < n && !r.bad; i++ {
		k := r.str()
		m[k] = int(r.uvarint())
	}
	return m
}

func encodeSnapshot(s *Snapshot) ([]byte, error) {
	b := []byte(snapMagic)
	b = binary.AppendUvarint(b, 1) // format version
	b = binary.AppendUvarint(b, s.LastLSN)
	b = binary.AppendUvarint(b, uint64(s.OutCols))
	b = binary.AppendUvarint(b, uint64(s.InCols))
	b = append(b, byte(s.Coloring), byte(s.DeleteMode))
	b = appendZigzag(b, s.NextLID)
	b = appendAssign(b, s.OutAssign)
	b = appendAssign(b, s.InAssign)

	names := make([]string, 0, len(s.Tables))
	for n := range s.Tables {
		names = append(names, n)
	}
	sort.Strings(names)
	b = binary.AppendUvarint(b, uint64(len(names)))
	var err error
	for _, name := range names {
		b = appendString(b, name)
		rows := s.Tables[name]
		b = binary.AppendUvarint(b, uint64(len(rows)))
		for _, row := range rows {
			b = binary.AppendUvarint(b, uint64(len(row)))
			for _, v := range row {
				if b, err = appendValue(b, v); err != nil {
					return nil, err
				}
			}
		}
	}
	sum := crc32.ChecksumIEEE(b[len(snapMagic):])
	return binary.LittleEndian.AppendUint32(b, sum), nil
}

func decodeSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < len(snapMagic)+4 || string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("%w: snapshot: bad magic", ErrCorrupt)
	}
	payload := data[len(snapMagic) : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(data[len(snapMagic):len(data)-4]) != want {
		return nil, fmt.Errorf("%w: snapshot: checksum mismatch", ErrCorrupt)
	}
	r := &byteReader{b: payload}
	if v := r.uvarint(); v != 1 {
		return nil, fmt.Errorf("%w: snapshot: unsupported version %d", ErrCorrupt, v)
	}
	s := &Snapshot{Tables: map[string][][]rel.Value{}}
	s.LastLSN = r.uvarint()
	s.OutCols = int(r.uvarint())
	s.InCols = int(r.uvarint())
	s.Coloring = int(r.byte())
	s.DeleteMode = int(r.byte())
	s.NextLID = r.zigzag()
	s.OutAssign = r.assign()
	s.InAssign = r.assign()
	ntables := r.uvarint()
	if r.bad || ntables > uint64(len(payload)) {
		return nil, fmt.Errorf("%w: snapshot: malformed header", ErrCorrupt)
	}
	for t := uint64(0); t < ntables; t++ {
		name := r.str()
		nrows := r.uvarint()
		if r.bad || nrows > uint64(len(payload)) {
			return nil, fmt.Errorf("%w: snapshot: malformed table %q", ErrCorrupt, name)
		}
		rows := make([][]rel.Value, 0, nrows)
		for i := uint64(0); i < nrows; i++ {
			ncols := r.uvarint()
			if r.bad || ncols > uint64(len(payload)) {
				break
			}
			row := make([]rel.Value, 0, ncols)
			for c := uint64(0); c < ncols && !r.bad; c++ {
				row = append(row, r.value())
			}
			rows = append(rows, row)
		}
		if r.bad {
			return nil, fmt.Errorf("%w: snapshot: malformed rows in table %q", ErrCorrupt, name)
		}
		s.Tables[name] = rows
	}
	if r.bad || r.off != len(payload) {
		return nil, fmt.Errorf("%w: snapshot: trailing garbage", ErrCorrupt)
	}
	return s, nil
}

// writeSnapshotFile writes the snapshot atomically: temp file, fsync,
// rename, directory fsync (best effort).
func writeSnapshotFile(dir string, s *Snapshot) error {
	data, err := encodeSnapshot(s)
	if err != nil {
		return err
	}
	return writeSnapshotBytes(dir, data)
}

// writeSnapshotBytes installs already-encoded snapshot bytes with the
// same atomic temp+fsync+rename protocol (replication bootstrap reuses
// it for snapshots received over the wire).
func writeSnapshotBytes(dir string, data []byte) error {
	tmp := filepath.Join(dir, tmpName)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// readSnapshotFile loads a snapshot, returning (nil, nil) when the file
// does not exist.
func readSnapshotFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: snapshot: %w", err)
	}
	return decodeSnapshot(data)
}
