package wal

// The replication wire format is the log format: a stream of
// checksummed frames ([len][crc32][payload]) identical to what Append
// writes to disk. This file is the public reader/apply surface shared
// by follower replicas, point-in-time restore, and future CDC
// consumers: TailReader iterates a live log file from an LSN (following
// appends and surviving checkpoint truncation), StreamReader parses
// frames incrementally off any io.Reader (an HTTP response body on the
// replica receive path), and InstallSnapshot bootstraps a fresh
// directory from a primary's encoded snapshot.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// ErrGap reports that a requested LSN is no longer available from the
// log: a checkpoint folded it into the snapshot. The consumer must
// re-bootstrap from a snapshot instead of tailing.
var ErrGap = errors.New("wal: requested LSN no longer in log")

// ErrTornStream reports a frame stream that ended mid-frame — the
// sender died or the connection was cut. The consumer's position is
// still a clean frame boundary; it can resume from its last applied
// LSN.
var ErrTornStream = errors.New("wal: stream cut mid-frame")

// AppendWireFrame appends rec encoded as one checksummed frame to b.
// The format is byte-identical to the on-disk log, so a follower can
// verify and apply streamed frames with the same code that recovers a
// local log.
func AppendWireFrame(b []byte, rec Record) []byte {
	payload := rec.encodePayload(nil)
	var hdr [8]byte
	putFrameHeader(hdr[:], payload)
	b = append(b, hdr[:]...)
	return append(b, payload...)
}

// StreamReader incrementally parses frames off an io.Reader, verifying
// each frame's checksum before decoding.
type StreamReader struct {
	r io.Reader
}

// NewStreamReader wraps r (typically a streaming HTTP response body).
func NewStreamReader(r io.Reader) *StreamReader { return &StreamReader{r: r} }

// Next reads one frame. It returns io.EOF when the stream ends exactly
// on a frame boundary, an ErrTornStream-wrapped error when it ends
// mid-frame, and an ErrCorrupt-wrapped error when a complete frame
// fails checksum or decode validation. Transport errors pass through
// unwrapped.
func (sr *StreamReader) Next() (Record, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(sr.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Record{}, fmt.Errorf("%w: truncated frame header", ErrTornStream)
		}
		return Record{}, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[0:]))
	wantCRC := binary.LittleEndian.Uint32(hdr[4:])
	if n > maxRecord {
		return Record{}, fmt.Errorf("%w: implausible frame length %d", ErrCorrupt, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(sr.r, payload); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return Record{}, fmt.Errorf("%w: truncated frame payload", ErrTornStream)
		}
		return Record{}, err
	}
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return Record{}, fmt.Errorf("%w: frame checksum mismatch", ErrCorrupt)
	}
	rec, err := decodeRecord(payload)
	if err != nil {
		return Record{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return rec, nil
}

// maxTailBatch bounds how many bytes one TailReader.Next call reads, so
// a follower far behind a large log streams in chunks instead of
// buffering the whole file.
const maxTailBatch = 1 << 20

// TailReader iterates the valid frames of a live log file starting at a
// given LSN. It tolerates concurrent appends (a partially written final
// frame is simply not ready yet) and checkpoint truncation (the file
// restarting at a higher LSN), and reports ErrGap when the wanted LSN
// has been folded into the snapshot and can never appear.
type TailReader struct {
	path     string
	snapPath string
	f        *os.File
	off      int64
	next     uint64 // next LSN to deliver
}

// OpenTail positions a reader over dir's log at from (0 is treated as
// 1, the first LSN ever). It fails with ErrGap immediately when dir's
// snapshot already covers from.
func OpenTail(dir string, from uint64) (*TailReader, error) {
	if from == 0 {
		from = 1
	}
	t := &TailReader{
		path:     filepath.Join(dir, logName),
		snapPath: filepath.Join(dir, snapName),
		next:     from,
	}
	if err := t.checkGap(); err != nil {
		return nil, err
	}
	return t, nil
}

// checkGap fails when the snapshot already covers the wanted LSN: the
// log starts after the snapshot, so that LSN can never be read from it.
func (t *TailReader) checkGap() error {
	snapLSN, err := ReadSnapshotLSN(t.snapPath)
	if err != nil {
		return err
	}
	if t.next <= snapLSN {
		return fmt.Errorf("%w: want LSN %d but the snapshot covers through %d", ErrGap, t.next, snapLSN)
	}
	return nil
}

// Next returns the raw bytes and descriptions of the frames available
// since the last call (nil, nil, nil when caught up — poll again
// later). The byte slice is a valid frame stream: it can be written to
// a wire verbatim. Mid-log corruption or a gap returns an error; the
// reader is then unusable.
func (t *TailReader) Next() ([]byte, []FrameInfo, error) {
	if t.f == nil {
		f, err := os.Open(t.path)
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil, nil // nothing logged yet
		}
		if err != nil {
			return nil, nil, err
		}
		t.f = f
	}
	st, err := t.f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size < t.off {
		// A checkpoint truncated the log; it restarts after the new
		// snapshot. Rescan from the top — and re-check that the wanted
		// LSN wasn't folded into that snapshot.
		t.off = 0
		if err := t.checkGap(); err != nil {
			return nil, nil, err
		}
	}
	if size == t.off {
		return nil, nil, nil
	}
	n := size - t.off
	if n > maxTailBatch {
		n = maxTailBatch
	}
	buf := make([]byte, n)
	m, err := t.f.ReadAt(buf, t.off)
	if err != nil && !errors.Is(err, io.EOF) {
		return nil, nil, err
	}
	// t.off is always a frame boundary, so this is a valid log segment;
	// a frame cut short by the batch bound or an in-flight append parses
	// as a torn tail and is retried next call.
	frames, goodOff, _, err := scanLog(buf[:m])
	if err != nil {
		return nil, nil, err
	}
	var out []byte
	var infos []FrameInfo
	for _, fr := range frames {
		if fr.rec.LSN < t.next {
			continue // already delivered (or predates from)
		}
		if fr.rec.LSN != t.next {
			return nil, nil, fmt.Errorf("%w: want LSN %d, log resumes at %d", ErrGap, t.next, fr.rec.LSN)
		}
		out = append(out, buf[fr.offset:fr.offset+fr.size]...)
		infos = append(infos, FrameInfo{Offset: fr.offset, Size: fr.size, LSN: fr.rec.LSN, Op: fr.rec.Op})
		t.next++
	}
	t.off += int64(goodOff)
	return out, infos, nil
}

// NextLSN reports the next LSN the reader will deliver.
func (t *TailReader) NextLSN() uint64 { return t.next }

// Close releases the underlying file handle.
func (t *TailReader) Close() error {
	if t.f != nil {
		return t.f.Close()
	}
	return nil
}

// ReadSnapshotLSN reports the LastLSN recorded in a snapshot file
// header (0 when the file does not exist). It parses only the header,
// so it is cheap even for large snapshots; the atomic temp+rename write
// protocol guarantees the header is never half-written.
func ReadSnapshotLSN(path string) (uint64, error) {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("wal: snapshot header: %w", err)
	}
	defer f.Close()
	var hdr [len(snapMagic) + 2*binary.MaxVarintLen64]byte
	n, err := f.Read(hdr[:])
	if err != nil && !errors.Is(err, io.EOF) {
		return 0, fmt.Errorf("wal: snapshot header: %w", err)
	}
	if n < len(snapMagic) || string(hdr[:len(snapMagic)]) != snapMagic {
		return 0, fmt.Errorf("%w: snapshot: bad magic", ErrCorrupt)
	}
	r := &byteReader{b: hdr[len(snapMagic):n]}
	if v := r.uvarint(); v != 1 {
		return 0, fmt.Errorf("%w: snapshot: unsupported version %d", ErrCorrupt, v)
	}
	lsn := r.uvarint()
	if r.bad {
		return 0, fmt.Errorf("%w: snapshot: truncated header", ErrCorrupt)
	}
	return lsn, nil
}

// EncodeSnapshotBytes serializes a snapshot with the same codec the
// checkpoint file uses (replication bootstrap ships these bytes).
func EncodeSnapshotBytes(s *Snapshot) ([]byte, error) { return encodeSnapshot(s) }

// DecodeSnapshotBytes validates and parses an encoded snapshot.
func DecodeSnapshotBytes(data []byte) (*Snapshot, error) { return decodeSnapshot(data) }

// InstallSnapshot validates an encoded snapshot and installs it into
// dir as the authoritative state: the snapshot file is written
// atomically (temp + fsync + rename) and any existing log is removed,
// since its records predate the snapshot. A crash between the rename
// and the log removal is safe — recovery drops log records the
// snapshot already covers. Opening the directory afterwards yields a
// store at exactly the snapshot's LSN.
func InstallSnapshot(dir string, data []byte) (*Snapshot, error) {
	snap, err := decodeSnapshot(data)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: install snapshot: %w", err)
	}
	if err := writeSnapshotBytes(dir, data); err != nil {
		return nil, err
	}
	if err := os.Remove(filepath.Join(dir, logName)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("wal: install snapshot: %w", err)
	}
	return snap, nil
}
