package wal

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// encodeFrames renders records as a wire/log frame stream, assigning
// LSNs from startLSN.
func encodeFrames(recs []Record, startLSN uint64) []byte {
	var b []byte
	for i, r := range recs {
		r.LSN = startLSN + uint64(i)
		b = AppendWireFrame(b, r)
	}
	return b
}

// tornCuts enumerates one representative truncation point per frame
// region: mid length header, mid checksum, and mid payload. The matrix
// drives ScanFrames, Recover, and StreamReader identically — the
// receive path and the recovery path must agree on what a torn tail is.
func tornCuts(lastFrame FrameInfo) []struct {
	name string
	cut  int
} {
	off := lastFrame.Offset
	return []struct {
		name string
		cut  int
	}{
		{"mid-header", off + 2},      // inside the 4-byte length
		{"mid-checksum", off + 6},    // inside the 4-byte CRC
		{"mid-payload", off + 8 + 1}, // first payload byte written
		{"payload-minus-1", off + lastFrame.Size - 1},
	}
}

func TestTornTailMatrix(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	writeAll(t, l, recs)
	l.Close()

	logPath := filepath.Join(dir, logName)
	full, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	frames, err := ScanFrames(logPath)
	if err != nil {
		t.Fatal(err)
	}
	last := frames[len(frames)-1]

	for _, tc := range tornCuts(last) {
		t.Run(tc.name, func(t *testing.T) {
			torn := full[:tc.cut]

			// ScanFrames drops the torn frame silently.
			if err := os.WriteFile(logPath, torn, 0o644); err != nil {
				t.Fatal(err)
			}
			fs, err := ScanFrames(logPath)
			if err != nil {
				t.Fatalf("ScanFrames: %v", err)
			}
			if len(fs) != len(recs)-1 {
				t.Fatalf("ScanFrames: %d frames, want %d", len(fs), len(recs)-1)
			}

			// Recover reports the same boundary.
			st, err := Recover(dir)
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			if len(st.Records) != len(recs)-1 {
				t.Fatalf("Recover: %d records, want %d", len(st.Records), len(recs)-1)
			}
			if st.ValidBytes != last.Offset || st.TornBytes != tc.cut-last.Offset {
				t.Fatalf("Recover: ValidBytes=%d TornBytes=%d, want %d/%d",
					st.ValidBytes, st.TornBytes, last.Offset, tc.cut-last.Offset)
			}

			// StreamReader yields the complete frames, then ErrTornStream.
			sr := NewStreamReader(bytes.NewReader(torn))
			for i := 0; i < len(recs)-1; i++ {
				rec, err := sr.Next()
				if err != nil {
					t.Fatalf("stream frame %d: %v", i, err)
				}
				if rec.LSN != uint64(i+1) {
					t.Fatalf("stream frame %d: LSN=%d", i, rec.LSN)
				}
			}
			if _, err := sr.Next(); !errors.Is(err, ErrTornStream) {
				t.Fatalf("stream tail: %v, want ErrTornStream", err)
			}
		})
	}

	// A clean stream ends with io.EOF, not ErrTornStream.
	sr := NewStreamReader(bytes.NewReader(full))
	for i := 0; i < len(recs); i++ {
		if _, err := sr.Next(); err != nil {
			t.Fatalf("clean frame %d: %v", i, err)
		}
	}
	if _, err := sr.Next(); err != io.EOF {
		t.Fatalf("clean tail: %v, want io.EOF", err)
	}
}

func TestStreamReaderCorruptFrame(t *testing.T) {
	full := encodeFrames(testRecords(), 1)

	// Flip one payload byte of the first frame: the frame is complete, so
	// this is corruption (checksum mismatch), not a torn stream.
	bad := append([]byte(nil), full...)
	bad[9] ^= 0xFF
	if _, err := NewStreamReader(bytes.NewReader(bad)).Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("payload flip: %v, want ErrCorrupt", err)
	}

	// An implausible length header is rejected before allocating.
	huge := []byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0}
	if _, err := NewStreamReader(bytes.NewReader(huge)).Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("huge length: %v, want ErrCorrupt", err)
	}

	// A transport error passes through unwrapped.
	boom := errors.New("boom")
	r := io.MultiReader(bytes.NewReader(full[:3]), errReader{boom})
	if _, err := NewStreamReader(r).Next(); !errors.Is(err, boom) {
		t.Fatalf("transport error: %v, want boom", err)
	}
}

type errReader struct{ err error }

func (e errReader) Read([]byte) (int, error) { return 0, e.err }

func TestHeartbeatFrameRoundTrip(t *testing.T) {
	b := AppendWireFrame(nil, Record{LSN: 42, Op: OpHeartbeat})
	rec, err := NewStreamReader(bytes.NewReader(b)).Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Op != OpHeartbeat || rec.LSN != 42 {
		t.Fatalf("heartbeat round trip = %+v", rec)
	}
}

func TestTailReaderFollowsAppends(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	tr, err := OpenTail(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	// Nothing yet — and the log file may not even exist.
	if b, fs, err := tr.Next(); err != nil || b != nil || fs != nil {
		t.Fatalf("empty tail: %v %v %v", b, fs, err)
	}

	recs := testRecords()
	writeAll(t, l, recs[:4])
	b, fs, err := tr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 4 {
		t.Fatalf("first batch: %d frames, want 4", len(fs))
	}
	// The bytes are a verbatim frame stream re-parseable by StreamReader.
	sr := NewStreamReader(bytes.NewReader(b))
	for i := 0; i < 4; i++ {
		rec, err := sr.Next()
		if err != nil || rec.LSN != uint64(i+1) {
			t.Fatalf("re-parse frame %d: %+v %v", i, rec, err)
		}
	}

	// Caught up: nil batch. More appends: only the new frames.
	if b, _, _ := tr.Next(); b != nil {
		t.Fatalf("caught-up tail returned %d bytes", len(b))
	}
	writeAll(t, l, recs[4:])
	_, fs, err = tr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != len(recs)-4 || fs[0].LSN != 5 {
		t.Fatalf("second batch: %d frames, first LSN %d", len(fs), fs[0].LSN)
	}
	if tr.NextLSN() != uint64(len(recs))+1 {
		t.Fatalf("NextLSN = %d", tr.NextLSN())
	}
}

func TestTailReaderResumeSkipsDelivered(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	writeAll(t, l, recs)
	l.Close()

	tr, err := OpenTail(dir, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	_, fs, err := tr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != len(recs)-6 || fs[0].LSN != 7 {
		t.Fatalf("resume from 7: %d frames, first LSN %d", len(fs), fs[0].LSN)
	}
}

func TestTailReaderGapAndTruncation(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	writeAll(t, l, recs)

	// A reader positioned at LSN 3 sees a gap once the snapshot covers
	// LSN 10: those frames will never reappear in the log.
	trBehind, err := OpenTail(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer trBehind.Close()

	// A caught-up reader survives the truncation transparently.
	trAhead, err := OpenTail(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer trAhead.Close()
	if _, fs, err := trAhead.Next(); err != nil || len(fs) != len(recs) {
		t.Fatalf("pre-truncation drain: %d frames, %v", len(fs), err)
	}

	if err := l.WriteSnapshot(sampleSnapshot(uint64(len(recs)))); err != nil {
		t.Fatal(err)
	}
	writeAll(t, l, []Record{{Op: OpAddVertex, ID: 9, Doc: `{}`}})
	l.Close()

	if _, _, err := trBehind.Next(); !errors.Is(err, ErrGap) {
		t.Fatalf("behind reader after checkpoint: %v, want ErrGap", err)
	}
	_, fs, err := trAhead.Next()
	if err != nil {
		t.Fatalf("ahead reader after checkpoint: %v", err)
	}
	if len(fs) != 1 || fs[0].LSN != uint64(len(recs))+1 {
		t.Fatalf("ahead reader post-truncation batch = %+v", fs)
	}

	// Opening below the snapshot LSN fails immediately.
	if _, err := OpenTail(dir, 2); !errors.Is(err, ErrGap) {
		t.Fatalf("OpenTail below snapshot: %v, want ErrGap", err)
	}
}

func TestReadSnapshotLSN(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, snapName)
	if lsn, err := ReadSnapshotLSN(path); err != nil || lsn != 0 {
		t.Fatalf("missing file: %d, %v", lsn, err)
	}
	if err := writeSnapshotFile(dir, sampleSnapshot(123)); err != nil {
		t.Fatal(err)
	}
	if lsn, err := ReadSnapshotLSN(path); err != nil || lsn != 123 {
		t.Fatalf("got %d, %v; want 123", lsn, err)
	}
	if err := os.WriteFile(path, []byte("garbage!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshotLSN(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("garbage header: %v, want ErrCorrupt", err)
	}
}

func TestInstallSnapshot(t *testing.T) {
	// Source directory with live state.
	src := t.TempDir()
	l, _, err := Open(src)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, l, testRecords())
	l.Close()

	snap := sampleSnapshot(uint64(len(testRecords())))
	data, err := EncodeSnapshotBytes(snap)
	if err != nil {
		t.Fatal(err)
	}

	// Install into a directory that has an older log; the log must go.
	dst := t.TempDir()
	l2, _, err := Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, l2, testRecords()[:3])
	l2.Close()

	got, err := InstallSnapshot(dst, data)
	if err != nil {
		t.Fatal(err)
	}
	if !snapshotsEqual(got, snap) {
		t.Fatal("InstallSnapshot returned a different snapshot")
	}
	if _, err := os.Stat(filepath.Join(dst, logName)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("old log survived install: %v", err)
	}
	st, err := Recover(dst)
	if err != nil {
		t.Fatal(err)
	}
	if st.Snapshot == nil || !snapshotsEqual(st.Snapshot, snap) || st.NextLSN != snap.LastLSN+1 {
		t.Fatalf("recover after install: NextLSN=%d", st.NextLSN)
	}

	// Corrupt bytes are rejected before touching the directory.
	bad := append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0xFF
	if _, err := InstallSnapshot(dst, bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt install: %v, want ErrCorrupt", err)
	}
}

func TestCloseIdempotentAndSafeAfterKill(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, l, testRecords()[:2])
	if err := l.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	// Close after Kill must not flush (the log is marked crashed) and must
	// not panic; repeated closes stay nil.
	l2, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l2.Append(Record{Op: OpVacuum}); err != nil {
		t.Fatal(err)
	}
	l2.Kill(errors.New("simulated crash"))
	if err := l2.Close(); err != nil {
		t.Fatalf("Close after Kill: %v", err)
	}
	if err := l2.Close(); err != nil {
		t.Fatalf("double Close after Kill: %v", err)
	}
	// Operations after Close fail cleanly instead of writing to a closed file.
	if _, err := l2.Append(Record{Op: OpVacuum}); err == nil {
		t.Fatal("Append after Close succeeded")
	}
}
