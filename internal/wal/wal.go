package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"
)

const (
	logName  = "wal.log"
	snapName = "snapshot.db"
	tmpName  = "snapshot.db.tmp"

	// maxRecord bounds a single record payload; a frame claiming more is
	// treated as garbage rather than allocated.
	maxRecord = 1 << 28
)

// ErrCorrupt marks unrecoverable log or snapshot damage: an invalid frame
// that is *followed* by data (a torn tail, by contrast, is silently
// truncated).
var ErrCorrupt = errors.New("wal: corrupt")

// WriteHook intercepts physical log writes for fault injection (tests
// only). It receives the bytes about to be written and returns how many of
// them to actually write plus an error to inject after the partial write.
// Returning (len(p), nil) is a no-op.
type WriteHook func(p []byte) (int, error)

// GroupCommit configures the cross-writer group-commit window. The zero
// value keeps the log synchronous: each committer that finds no flush in
// flight leads its own (batching only with writers that happen to
// overlap). When enabled, a dedicated flusher goroutine accumulates
// appends for up to MaxDelay — or until MaxBatch records are pending —
// and makes them durable with one write+fsync; committers are pure
// waiters on their LSN.
type GroupCommit struct {
	// MaxDelay bounds how long a committed record may wait for
	// companions before the flusher syncs it.
	MaxDelay time.Duration
	// MaxBatch flushes the window early once this many records are
	// pending (0 = no record cap).
	MaxBatch int
}

// Enabled reports whether the options ask for a dedicated flusher.
func (g GroupCommit) Enabled() bool { return g.MaxDelay > 0 || g.MaxBatch > 0 }

// Log is an append-only write-ahead log bound to a directory. Appends are
// buffered; Commit (or Flush) performs the group commit: one write +
// fsync for everything buffered since the last flush. The physical
// write+fsync happens outside the log mutex — the buffer is swapped under
// the lock, so concurrent Appends land in the next batch instead of
// blocking on the disk. Any I/O error is sticky: the log refuses further
// work, like a crashed process would.
type Log struct {
	mu        sync.Mutex
	cond      *sync.Cond // signals durable advancing, flush completion, or a sticky error
	f         *os.File
	dir       string
	buf       []byte
	spare     []byte // recycled buffer; appends land here while a flush is in flight
	pending   int    // records in buf (appended, not yet handed to a flush)
	nextLSN   uint64
	durable   uint64 // highest LSN covered by a completed fsync or snapshot
	snapLSN   uint64 // LastLSN of the snapshot the log starts after
	sinceSnap int
	flushing  bool // a leader or the flusher owns the swapped-out batch
	lastBatch int  // records covered by the most recently completed flush
	hook      WriteHook
	syncObs   func(d time.Duration, records int) // observes each physical fsync
	closed    bool
	err       error

	gc          GroupCommit
	kickC       chan struct{} // tells the flusher records are pending
	fullC       chan struct{} // tells the flusher MaxBatch has been reached
	stopC       chan struct{}
	flusherDone chan struct{}
}

// RecoveredState is what Recover reads back from a directory.
type RecoveredState struct {
	// Snapshot is the last durable snapshot, or nil.
	Snapshot *Snapshot
	// Records are the CRC-valid log records not covered by the snapshot
	// (LSN > Snapshot.LastLSN), in LSN order.
	Records []Record
	// TornBytes counts trailing log bytes discarded as a torn final write.
	TornBytes int
	// ValidBytes is the log prefix length that parsed cleanly (the offset
	// an appender should resume at).
	ValidBytes int
	// NextLSN is the LSN the next appended record must carry.
	NextLSN uint64
}

// putFrameHeader fills the 8-byte frame header for a payload.
func putFrameHeader(hdr []byte, payload []byte) {
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
}

type frame struct {
	rec    Record
	offset int
	size   int // frame size including the 8-byte header
}

// scanLog parses a log image. It returns the valid frames, the offset of
// the first byte past them, and the number of trailing bytes dropped as a
// torn write. A frame that fails validation mid-log (valid data after it)
// is corruption and yields an ErrCorrupt-wrapped error instead.
func scanLog(data []byte) (frames []frame, goodOff, torn int, err error) {
	off := 0
	var lastLSN uint64
	for off < len(data) {
		rem := len(data) - off
		if rem < 8 {
			return frames, off, rem, nil // torn frame header
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		wantCRC := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxRecord {
			if n > rem-8 {
				return frames, off, rem, nil // runs past EOF: torn
			}
			return frames, off, 0, fmt.Errorf("%w: implausible frame length %d at offset %d", ErrCorrupt, n, off)
		}
		if n > rem-8 {
			return frames, off, rem, nil // torn frame body
		}
		payload := data[off+8 : off+8+n]
		atEOF := off+8+n == len(data)
		if crc32.ChecksumIEEE(payload) != wantCRC {
			if atEOF {
				return frames, off, rem, nil // torn final frame
			}
			return frames, off, 0, fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorrupt, off)
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			if atEOF {
				return frames, off, rem, nil
			}
			return frames, off, 0, fmt.Errorf("%w: %v (offset %d)", ErrCorrupt, derr, off)
		}
		if len(frames) > 0 && rec.LSN <= lastLSN {
			return frames, off, 0, fmt.Errorf("%w: LSN %d at offset %d does not advance past %d", ErrCorrupt, rec.LSN, off, lastLSN)
		}
		lastLSN = rec.LSN
		frames = append(frames, frame{rec: rec, offset: off, size: 8 + n})
		off += 8 + n
	}
	return frames, off, 0, nil
}

// Recover reads a store directory without modifying it: the latest
// snapshot plus the log tail. A torn final record is dropped (TornBytes
// reports how much); an invalid record with valid data after it returns an
// ErrCorrupt-wrapped error.
func Recover(dir string) (*RecoveredState, error) {
	snap, err := readSnapshotFile(filepath.Join(dir, snapName))
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(dir, logName))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("wal: recover: %w", err)
	}
	frames, goodOff, torn, err := scanLog(data)
	if err != nil {
		return nil, err
	}
	st := &RecoveredState{Snapshot: snap, TornBytes: torn, ValidBytes: goodOff}
	var minLSN uint64
	if snap != nil {
		minLSN = snap.LastLSN
	}
	next := minLSN + 1
	stale := 0
	for _, fr := range frames {
		if fr.rec.LSN <= minLSN {
			// Already folded into the snapshot: a crash hit the window
			// between the snapshot rename and the log truncation.
			stale++
			continue
		}
		st.Records = append(st.Records, fr.rec)
		next = fr.rec.LSN + 1
	}
	if stale == len(frames) && stale > 0 {
		// The whole log predates the snapshot; an appender restarts it.
		st.ValidBytes = 0
	}
	st.NextLSN = next
	return st, nil
}

// FrameInfo describes one valid log frame (offsets are used by the
// crash-sweep tests to enumerate write boundaries, and by fsck reporting).
type FrameInfo struct {
	Offset int
	Size   int
	LSN    uint64
	Op     OpKind
}

// ScanFrames lists the valid frames of a log file, ignoring a torn tail.
// Mid-log corruption returns an error.
func ScanFrames(path string) ([]FrameInfo, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	frames, _, _, err := scanLog(data)
	if err != nil {
		return nil, err
	}
	out := make([]FrameInfo, len(frames))
	for i, fr := range frames {
		out[i] = FrameInfo{Offset: fr.offset, Size: fr.size, LSN: fr.rec.LSN, Op: fr.rec.Op}
	}
	return out, nil
}

// Open recovers dir and returns an append-ready log positioned after the
// last valid record. A torn tail is physically truncated; stale records
// already covered by the snapshot are dropped with the whole log.
func Open(dir string) (*Log, *RecoveredState, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: open: %w", err)
	}
	st, err := Recover(dir)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open: %w", err)
	}
	if err := f.Truncate(int64(st.ValidBytes)); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: open: truncating torn tail: %w", err)
	}
	if _, err := f.Seek(int64(st.ValidBytes), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: open: %w", err)
	}
	l := &Log{f: f, dir: dir, nextLSN: st.NextLSN, durable: st.NextLSN - 1, sinceSnap: len(st.Records)}
	l.cond = sync.NewCond(&l.mu)
	if st.Snapshot != nil {
		l.snapLSN = st.Snapshot.LastLSN
	}
	return l, st, nil
}

// EnableGroupCommit starts the dedicated flusher goroutine with the given
// accumulation window. Call at most once, right after Open, before any
// concurrent use; Close stops the flusher.
func (l *Log) EnableGroupCommit(gc GroupCommit) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.flusherDone != nil || l.closed || !gc.Enabled() {
		return
	}
	l.gc = gc
	l.kickC = make(chan struct{}, 1)
	l.fullC = make(chan struct{}, 1)
	l.stopC = make(chan struct{})
	l.flusherDone = make(chan struct{})
	go l.flusherLoop()
}

// flusherLoop waits for appends, lets companions accumulate for the
// configured window, and flushes each batch with one write+fsync. A kick
// token is sent exactly when pending goes 0→1, so every pending record is
// covered by a current or future loop iteration.
func (l *Log) flusherLoop() {
	defer close(l.flusherDone)
	for {
		select {
		case <-l.stopC:
			return
		case <-l.kickC:
		}
		if d := l.gc.MaxDelay; d > 0 {
			select {
			case <-l.fullC: // drain a stale full signal from a prior batch
			default:
			}
			l.mu.Lock()
			full := l.gc.MaxBatch > 0 && l.pending >= l.gc.MaxBatch
			l.mu.Unlock()
			if !full {
				t := time.NewTimer(d)
				select {
				case <-t.C:
				case <-l.fullC:
					t.Stop()
				case <-l.stopC:
					t.Stop()
					return // Close flushes the remainder
				}
			}
		}
		l.mu.Lock()
		err := l.flushBatchLocked()
		l.mu.Unlock()
		if err != nil {
			return // sticky error: waiters have been woken with l.err set
		}
	}
}

// SetWriteHook installs a fault-injection hook on physical log writes.
// Test use only; must be set before concurrent use.
func (l *Log) SetWriteHook(h WriteHook) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.hook = h
}

// Kill marks the log as crashed: buffered records are dropped and every
// further operation fails with err. Commit waiters are woken. Test use
// only.
func (l *Log) Kill(err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err == nil {
		l.err = err
	}
	if l.cond != nil {
		l.cond.Broadcast()
	}
}

// SetSyncObserver installs a callback invoked after every successful
// physical fsync with its duration and the number of records it covered.
// Must be set before concurrent use.
func (l *Log) SetSyncObserver(fn func(d time.Duration, records int)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.syncObs = fn
}

// DurableLSN returns the highest LSN covered by a completed fsync or
// snapshot. Commit(lsn) returns only once DurableLSN() >= lsn.
func (l *Log) DurableLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// Err returns the sticky error, if the log has failed.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// LastLSN returns the LSN of the last appended record (0 if none).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// SnapshotLSN returns the LastLSN of the snapshot the current log file
// starts after (0 when the directory has never been checkpointed). The
// log holds exactly the records in (SnapshotLSN, LastLSN].
func (l *Log) SnapshotLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapLSN
}

// RecordsSinceSnapshot counts appends since the last snapshot rotation
// (including records recovered from the current log at Open).
func (l *Log) RecordsSinceSnapshot() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinceSnap
}

// Buffered reports how many appended records are sitting in the buffer
// awaiting their group-commit flush (a gauge of write-path backpressure).
func (l *Log) Buffered() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pending
}

// Append assigns the next LSN and buffers the record. It does not touch
// the disk; call Flush (after the in-memory transaction commits) to make
// it durable.
func (l *Log) Append(r Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	r.LSN = l.nextLSN
	l.nextLSN++
	payload := r.encodePayload(nil)
	var hdr [8]byte
	putFrameHeader(hdr[:], payload)
	l.buf = append(l.buf, hdr[:]...)
	l.buf = append(l.buf, payload...)
	l.sinceSnap++
	l.pending++
	if l.kickC != nil {
		if l.pending == 1 {
			select {
			case l.kickC <- struct{}{}:
			default:
			}
		}
		if l.gc.MaxBatch > 0 && l.pending >= l.gc.MaxBatch {
			select {
			case l.fullC <- struct{}{}:
			default:
			}
		}
	}
	return r.LSN, nil
}

// Commit blocks until the record at lsn is durable and returns the size
// of the flush batch observed when durability was confirmed (how many
// records the fsync amortized over). In synchronous mode the first
// committer to find no flush in flight becomes the leader — it swaps the
// buffer out under the lock and performs the write+fsync outside it —
// and overlapping committers wait to be covered. With EnableGroupCommit
// every committer is a pure waiter on the dedicated flusher.
func (l *Log) Commit(lsn uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.err != nil {
			return 0, l.err
		}
		if l.durable >= lsn {
			return l.lastBatch, nil
		}
		if l.flusherDone != nil || l.flushing {
			l.cond.Wait()
			continue
		}
		if err := l.flushBatchLocked(); err != nil {
			return 0, err
		}
	}
}

// Flush blocks until every record appended so far is durable. Used by
// Close and by callers that want a full barrier rather than a single
// LSN's durability.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushAllLocked()
}

// flushAllLocked drives (or waits out) flushes until the last appended
// LSN is durable. Caller holds l.mu.
func (l *Log) flushAllLocked() error {
	target := l.nextLSN - 1
	for {
		if l.err != nil {
			return l.err
		}
		if l.durable >= target {
			return nil
		}
		if l.flushing {
			l.cond.Wait()
			continue
		}
		if err := l.flushBatchLocked(); err != nil {
			return err
		}
	}
}

// flushBatchLocked swaps the pending buffer out, releases l.mu for the
// physical write+fsync (concurrent Appends proceed into the spare
// buffer), then republishes the durable watermark and wakes waiters. The
// caller must hold l.mu with l.flushing false; the flushing flag
// guarantees at most one flush is in flight. Returns with l.mu held.
func (l *Log) flushBatchLocked() error {
	if l.err != nil {
		return l.err
	}
	if l.pending == 0 {
		return nil
	}
	p := l.buf
	n := l.pending
	target := l.nextLSN - 1
	l.buf = l.spare[:0]
	l.spare = nil
	l.pending = 0
	l.flushing = true
	hook := l.hook
	f := l.f
	obs := l.syncObs
	l.mu.Unlock()

	allow := len(p)
	var herr, ferr error
	if hook != nil {
		allow, herr = hook(p)
		if allow > len(p) {
			allow = len(p)
		}
		if allow < 0 {
			allow = 0
		}
	}
	if allow > 0 {
		if _, werr := f.Write(p[:allow]); werr != nil {
			ferr = werr
		}
	}
	if ferr == nil {
		ferr = herr
	}
	var d time.Duration
	if ferr == nil {
		t := time.Now()
		ferr = f.Sync()
		d = time.Since(t)
	}

	l.mu.Lock()
	l.flushing = false
	l.cond.Broadcast()
	if ferr != nil {
		if l.err == nil {
			l.err = ferr
		}
		return ferr
	}
	if target > l.durable {
		l.durable = target
	}
	l.lastBatch = n
	l.spare = p[:0]
	if obs != nil {
		obs(d, n)
	}
	return nil
}

// WriteSnapshot durably replaces the snapshot file (write-temp, fsync,
// rename) and resets the log, which the snapshot now supersedes. The
// caller must hold locks that exclude concurrent appends and must pass
// snap.LastLSN equal to the last appended LSN, so no record can be lost to
// the truncation.
func (l *Log) WriteSnapshot(snap *Snapshot) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	// An in-flight flush would write its batch into the truncated file;
	// wait it out first (it covers only LSNs <= LastLSN, which the
	// snapshot is about to supersede anyway).
	for l.flushing {
		l.cond.Wait()
	}
	if l.err != nil {
		return l.err
	}
	if snap.LastLSN != l.nextLSN-1 {
		return fmt.Errorf("wal: snapshot at LSN %d but log is at %d", snap.LastLSN, l.nextLSN-1)
	}
	if err := writeSnapshotFile(l.dir, snap); err != nil {
		return err
	}
	// Everything buffered or logged is <= LastLSN and folded into the
	// snapshot; restart the log.
	l.buf = l.buf[:0]
	l.pending = 0
	if err := l.f.Truncate(0); err != nil {
		l.err = err
		l.cond.Broadcast()
		return err
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		l.err = err
		l.cond.Broadcast()
		return err
	}
	l.snapLSN = snap.LastLSN
	l.sinceSnap = 0
	if snap.LastLSN > l.durable {
		l.durable = snap.LastLSN
	}
	l.cond.Broadcast()
	return nil
}

// Close stops the group-commit flusher (if any), flushes buffered
// records, and closes the file. Close is idempotent — the second and
// later calls return nil — and safe after Kill: a killed log skips the
// flush (its buffer is already condemned) and just releases the file
// handle.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	stop, done := l.stopC, l.flusherDone
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	var ferr error
	if l.err == nil {
		ferr = l.flushAllLocked()
	}
	cerr := l.f.Close()
	if l.err == nil {
		l.err = errors.New("wal: log closed")
	}
	l.cond.Broadcast()
	if ferr != nil {
		return ferr
	}
	return cerr
}
