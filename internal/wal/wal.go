package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
)

const (
	logName  = "wal.log"
	snapName = "snapshot.db"
	tmpName  = "snapshot.db.tmp"

	// maxRecord bounds a single record payload; a frame claiming more is
	// treated as garbage rather than allocated.
	maxRecord = 1 << 28
)

// ErrCorrupt marks unrecoverable log or snapshot damage: an invalid frame
// that is *followed* by data (a torn tail, by contrast, is silently
// truncated).
var ErrCorrupt = errors.New("wal: corrupt")

// WriteHook intercepts physical log writes for fault injection (tests
// only). It receives the bytes about to be written and returns how many of
// them to actually write plus an error to inject after the partial write.
// Returning (len(p), nil) is a no-op.
type WriteHook func(p []byte) (int, error)

// Log is an append-only write-ahead log bound to a directory. Appends are
// buffered; Flush performs the group commit (one write + fsync for
// everything buffered since the last flush). Any I/O error is sticky: the
// log refuses further work, like a crashed process would.
type Log struct {
	mu        sync.Mutex
	f         *os.File
	dir       string
	buf       []byte
	nextLSN   uint64
	snapLSN   uint64 // LastLSN of the snapshot the log starts after
	sinceSnap int
	hook      WriteHook
	closed    bool
	err       error
}

// RecoveredState is what Recover reads back from a directory.
type RecoveredState struct {
	// Snapshot is the last durable snapshot, or nil.
	Snapshot *Snapshot
	// Records are the CRC-valid log records not covered by the snapshot
	// (LSN > Snapshot.LastLSN), in LSN order.
	Records []Record
	// TornBytes counts trailing log bytes discarded as a torn final write.
	TornBytes int
	// ValidBytes is the log prefix length that parsed cleanly (the offset
	// an appender should resume at).
	ValidBytes int
	// NextLSN is the LSN the next appended record must carry.
	NextLSN uint64
}

// putFrameHeader fills the 8-byte frame header for a payload.
func putFrameHeader(hdr []byte, payload []byte) {
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
}

type frame struct {
	rec    Record
	offset int
	size   int // frame size including the 8-byte header
}

// scanLog parses a log image. It returns the valid frames, the offset of
// the first byte past them, and the number of trailing bytes dropped as a
// torn write. A frame that fails validation mid-log (valid data after it)
// is corruption and yields an ErrCorrupt-wrapped error instead.
func scanLog(data []byte) (frames []frame, goodOff, torn int, err error) {
	off := 0
	var lastLSN uint64
	for off < len(data) {
		rem := len(data) - off
		if rem < 8 {
			return frames, off, rem, nil // torn frame header
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		wantCRC := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxRecord {
			if n > rem-8 {
				return frames, off, rem, nil // runs past EOF: torn
			}
			return frames, off, 0, fmt.Errorf("%w: implausible frame length %d at offset %d", ErrCorrupt, n, off)
		}
		if n > rem-8 {
			return frames, off, rem, nil // torn frame body
		}
		payload := data[off+8 : off+8+n]
		atEOF := off+8+n == len(data)
		if crc32.ChecksumIEEE(payload) != wantCRC {
			if atEOF {
				return frames, off, rem, nil // torn final frame
			}
			return frames, off, 0, fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorrupt, off)
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			if atEOF {
				return frames, off, rem, nil
			}
			return frames, off, 0, fmt.Errorf("%w: %v (offset %d)", ErrCorrupt, derr, off)
		}
		if len(frames) > 0 && rec.LSN <= lastLSN {
			return frames, off, 0, fmt.Errorf("%w: LSN %d at offset %d does not advance past %d", ErrCorrupt, rec.LSN, off, lastLSN)
		}
		lastLSN = rec.LSN
		frames = append(frames, frame{rec: rec, offset: off, size: 8 + n})
		off += 8 + n
	}
	return frames, off, 0, nil
}

// Recover reads a store directory without modifying it: the latest
// snapshot plus the log tail. A torn final record is dropped (TornBytes
// reports how much); an invalid record with valid data after it returns an
// ErrCorrupt-wrapped error.
func Recover(dir string) (*RecoveredState, error) {
	snap, err := readSnapshotFile(filepath.Join(dir, snapName))
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(dir, logName))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("wal: recover: %w", err)
	}
	frames, goodOff, torn, err := scanLog(data)
	if err != nil {
		return nil, err
	}
	st := &RecoveredState{Snapshot: snap, TornBytes: torn, ValidBytes: goodOff}
	var minLSN uint64
	if snap != nil {
		minLSN = snap.LastLSN
	}
	next := minLSN + 1
	stale := 0
	for _, fr := range frames {
		if fr.rec.LSN <= minLSN {
			// Already folded into the snapshot: a crash hit the window
			// between the snapshot rename and the log truncation.
			stale++
			continue
		}
		st.Records = append(st.Records, fr.rec)
		next = fr.rec.LSN + 1
	}
	if stale == len(frames) && stale > 0 {
		// The whole log predates the snapshot; an appender restarts it.
		st.ValidBytes = 0
	}
	st.NextLSN = next
	return st, nil
}

// FrameInfo describes one valid log frame (offsets are used by the
// crash-sweep tests to enumerate write boundaries, and by fsck reporting).
type FrameInfo struct {
	Offset int
	Size   int
	LSN    uint64
	Op     OpKind
}

// ScanFrames lists the valid frames of a log file, ignoring a torn tail.
// Mid-log corruption returns an error.
func ScanFrames(path string) ([]FrameInfo, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	frames, _, _, err := scanLog(data)
	if err != nil {
		return nil, err
	}
	out := make([]FrameInfo, len(frames))
	for i, fr := range frames {
		out[i] = FrameInfo{Offset: fr.offset, Size: fr.size, LSN: fr.rec.LSN, Op: fr.rec.Op}
	}
	return out, nil
}

// Open recovers dir and returns an append-ready log positioned after the
// last valid record. A torn tail is physically truncated; stale records
// already covered by the snapshot are dropped with the whole log.
func Open(dir string) (*Log, *RecoveredState, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: open: %w", err)
	}
	st, err := Recover(dir)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open: %w", err)
	}
	if err := f.Truncate(int64(st.ValidBytes)); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: open: truncating torn tail: %w", err)
	}
	if _, err := f.Seek(int64(st.ValidBytes), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: open: %w", err)
	}
	l := &Log{f: f, dir: dir, nextLSN: st.NextLSN, sinceSnap: len(st.Records)}
	if st.Snapshot != nil {
		l.snapLSN = st.Snapshot.LastLSN
	}
	return l, st, nil
}

// SetWriteHook installs a fault-injection hook on physical log writes.
// Test use only; must be set before concurrent use.
func (l *Log) SetWriteHook(h WriteHook) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.hook = h
}

// Kill marks the log as crashed: buffered records are dropped and every
// further operation fails with err. Test use only.
func (l *Log) Kill(err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err == nil {
		l.err = err
	}
}

// Err returns the sticky error, if the log has failed.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// LastLSN returns the LSN of the last appended record (0 if none).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// SnapshotLSN returns the LastLSN of the snapshot the current log file
// starts after (0 when the directory has never been checkpointed). The
// log holds exactly the records in (SnapshotLSN, LastLSN].
func (l *Log) SnapshotLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapLSN
}

// RecordsSinceSnapshot counts appends since the last snapshot rotation
// (including records recovered from the current log at Open).
func (l *Log) RecordsSinceSnapshot() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinceSnap
}

// Append assigns the next LSN and buffers the record. It does not touch
// the disk; call Flush (after the in-memory transaction commits) to make
// it durable.
func (l *Log) Append(r Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	r.LSN = l.nextLSN
	l.nextLSN++
	payload := r.encodePayload(nil)
	var hdr [8]byte
	putFrameHeader(hdr[:], payload)
	l.buf = append(l.buf, hdr[:]...)
	l.buf = append(l.buf, payload...)
	l.sinceSnap++
	return r.LSN, nil
}

// Flush writes every buffered record in one write and fsyncs: the group
// commit. Concurrent operations that appended since the last flush are
// committed together.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked()
}

func (l *Log) flushLocked() error {
	if l.err != nil {
		return l.err
	}
	if len(l.buf) == 0 {
		return nil
	}
	p := l.buf
	allow := len(p)
	var herr error
	if l.hook != nil {
		allow, herr = l.hook(p)
		if allow > len(p) {
			allow = len(p)
		}
		if allow < 0 {
			allow = 0
		}
	}
	if allow > 0 {
		if _, werr := l.f.Write(p[:allow]); werr != nil {
			l.err = werr
			return werr
		}
	}
	if herr != nil {
		l.err = herr
		return herr
	}
	l.buf = l.buf[:0]
	if err := l.f.Sync(); err != nil {
		l.err = err
		return err
	}
	return nil
}

// WriteSnapshot durably replaces the snapshot file (write-temp, fsync,
// rename) and resets the log, which the snapshot now supersedes. The
// caller must hold locks that exclude concurrent appends and must pass
// snap.LastLSN equal to the last appended LSN, so no record can be lost to
// the truncation.
func (l *Log) WriteSnapshot(snap *Snapshot) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if snap.LastLSN != l.nextLSN-1 {
		return fmt.Errorf("wal: snapshot at LSN %d but log is at %d", snap.LastLSN, l.nextLSN-1)
	}
	if err := writeSnapshotFile(l.dir, snap); err != nil {
		return err
	}
	// Everything buffered or logged is <= LastLSN and folded into the
	// snapshot; restart the log.
	l.buf = l.buf[:0]
	if err := l.f.Truncate(0); err != nil {
		l.err = err
		return err
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		l.err = err
		return err
	}
	l.snapLSN = snap.LastLSN
	l.sinceSnap = 0
	return nil
}

// Close flushes buffered records and closes the file. Close is
// idempotent — the second and later calls return nil — and safe after
// Kill: a killed log skips the flush (its buffer is already condemned)
// and just releases the file handle.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var ferr error
	if l.err == nil {
		ferr = l.flushLocked()
	}
	cerr := l.f.Close()
	if l.err == nil {
		l.err = errors.New("wal: log closed")
	}
	if ferr != nil {
		return ferr
	}
	return cerr
}
