package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sqlgraph/internal/rel"
	"sqlgraph/internal/sqljson"
)

func testRecords() []Record {
	return []Record{
		{Op: OpAddVertex, ID: 1, Doc: `{"name":"ada"}`},
		{Op: OpAddVertex, ID: 2, Doc: `{}`},
		{Op: OpAddEdge, ID: 100, Out: 1, In: 2, Label: "knows", Doc: `{"since":1970}`},
		{Op: OpSetVertexAttr, ID: 1, Key: "age", Doc: `{"v":36}`},
		{Op: OpRemoveVertexAttr, ID: 1, Key: "age"},
		{Op: OpSetEdgeAttr, ID: 100, Key: "w", Doc: `{"v":0.5}`},
		{Op: OpRemoveEdgeAttr, ID: 100, Key: "w"},
		{Op: OpRemoveEdge, ID: 100},
		{Op: OpRemoveVertex, ID: 2},
		{Op: OpVacuum},
	}
}

func writeAll(t *testing.T, l *Log, recs []Record) {
	t.Helper()
	for _, r := range recs {
		if _, err := l.Append(r); err != nil {
			t.Fatalf("Append(%v): %v", r.Op, err)
		}
		if err := l.Flush(); err != nil {
			t.Fatalf("Flush after %v: %v", r.Op, err)
		}
	}
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Snapshot != nil || len(st.Records) != 0 || st.NextLSN != 1 {
		t.Fatalf("fresh dir recovered state = %+v", st)
	}
	recs := testRecords()
	writeAll(t, l, recs)
	if got := l.LastLSN(); got != uint64(len(recs)) {
		t.Fatalf("LastLSN = %d, want %d", got, len(recs))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.TornBytes != 0 {
		t.Fatalf("TornBytes = %d on clean log", st2.TornBytes)
	}
	if len(st2.Records) != len(recs) {
		t.Fatalf("recovered %d records, want %d", len(st2.Records), len(recs))
	}
	for i, got := range st2.Records {
		want := recs[i]
		want.LSN = uint64(i + 1)
		if got != want {
			t.Fatalf("record %d = %+v, want %+v", i, got, want)
		}
	}
	if st2.NextLSN != uint64(len(recs))+1 {
		t.Fatalf("NextLSN = %d", st2.NextLSN)
	}
}

func TestGroupCommitSingleFlush(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	for _, r := range recs {
		if _, err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	// Nothing is durable before the flush.
	if st, err := Recover(dir); err != nil || len(st.Records) != 0 {
		t.Fatalf("pre-flush recover: %d records, err=%v", len(st.Records), err)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	st, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Records) != len(recs) {
		t.Fatalf("post-flush recover: %d records, want %d", len(st.Records), len(recs))
	}
	l.Close()
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	writeAll(t, l, recs)
	l.Close()

	logPath := filepath.Join(dir, logName)
	full, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	frames, err := ScanFrames(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != len(recs) {
		t.Fatalf("ScanFrames: %d frames, want %d", len(frames), len(recs))
	}
	last := frames[len(frames)-1]
	// Every possible truncation point inside the final frame loses exactly
	// that frame, silently.
	for cut := last.Offset + 1; cut < last.Offset+last.Size; cut++ {
		if err := os.WriteFile(logPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Recover(dir)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if len(st.Records) != len(recs)-1 {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, len(st.Records), len(recs)-1)
		}
		if st.TornBytes != cut-last.Offset {
			t.Fatalf("cut=%d: TornBytes=%d, want %d", cut, st.TornBytes, cut-last.Offset)
		}
		if st.ValidBytes != last.Offset {
			t.Fatalf("cut=%d: ValidBytes=%d, want %d", cut, st.ValidBytes, last.Offset)
		}
	}

	// Re-open truncates the torn tail and appends cleanly after it.
	if err := os.WriteFile(logPath, full[:last.Offset+2], 0o644); err != nil {
		t.Fatal(err)
	}
	l2, st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.NextLSN != uint64(len(recs)) {
		t.Fatalf("NextLSN after torn tail = %d, want %d", st.NextLSN, len(recs))
	}
	writeAll(t, l2, []Record{{Op: OpVacuum}})
	l2.Close()
	st2, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.Records) != len(recs) || st2.Records[len(recs)-1].Op != OpVacuum {
		t.Fatalf("after re-append: %d records, last %v", len(st2.Records), st2.Records[len(st2.Records)-1].Op)
	}
}

func TestMidLogCorruptionIsError(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, l, testRecords())
	l.Close()

	logPath := filepath.Join(dir, logName)
	full, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	frames, err := ScanFrames(logPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of a middle frame: valid frames follow it, so
	// this is corruption, not a torn tail.
	mid := frames[len(frames)/2]
	data := append([]byte(nil), full...)
	data[mid.Offset+8] ^= 0xFF
	if err := os.WriteFile(logPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Recover on mid-log corruption: %v, want ErrCorrupt", err)
	}

	// The same flip in the final frame is a torn tail, not corruption.
	lastOff := frames[len(frames)-1].Offset
	data = append([]byte(nil), full...)
	data[lastOff+8] ^= 0xFF
	if err := os.WriteFile(logPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover with corrupt final frame: %v", err)
	}
	if len(st.Records) != len(frames)-1 {
		t.Fatalf("recovered %d records, want %d", len(st.Records), len(frames)-1)
	}
}

func sampleSnapshot(lastLSN uint64) *Snapshot {
	doc, _ := sqljson.Parse(`{"name":"ada","tags":[1,2.5,"x"]}`)
	return &Snapshot{
		LastLSN:    lastLSN,
		OutCols:    3,
		InCols:     2,
		Coloring:   1,
		DeleteMode: 0,
		NextLID:    -4,
		OutAssign:  map[string]int{"knows": 0, "likes": 2},
		InAssign:   map[string]int{"knows": 1},
		Tables: map[string][][]rel.Value{
			"VA": {
				{rel.NewInt(1), rel.NewJSON(doc)},
				{rel.NewInt(-3), rel.Null},
			},
			"OSA": {
				{rel.NewInt(-1), rel.NewInt(100), rel.NewInt(2)},
			},
			"EMPTY": {},
		},
	}
}

func snapshotsEqual(a, b *Snapshot) bool {
	if a.LastLSN != b.LastLSN || a.OutCols != b.OutCols || a.InCols != b.InCols ||
		a.Coloring != b.Coloring || a.DeleteMode != b.DeleteMode || a.NextLID != b.NextLID ||
		!reflect.DeepEqual(a.OutAssign, b.OutAssign) || !reflect.DeepEqual(a.InAssign, b.InAssign) ||
		len(a.Tables) != len(b.Tables) {
		return false
	}
	for name, rows := range a.Tables {
		got, ok := b.Tables[name]
		if !ok || len(got) != len(rows) {
			return false
		}
		for i := range rows {
			if len(rows[i]) != len(got[i]) {
				return false
			}
			for c := range rows[i] {
				if !rel.Equal(rows[i][c], got[i][c]) {
					return false
				}
			}
		}
	}
	return true
}

func TestSnapshotRoundTrip(t *testing.T) {
	snap := sampleSnapshot(7)
	data, err := encodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if !snapshotsEqual(snap, got) {
		t.Fatalf("snapshot round trip mismatch:\n got %+v\nwant %+v", got, snap)
	}

	// Any single-byte flip must be detected.
	for _, pos := range []int{0, len(snapMagic), len(data) / 2, len(data) - 1} {
		bad := append([]byte(nil), data...)
		bad[pos] ^= 0xFF
		if _, err := decodeSnapshot(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: err=%v, want ErrCorrupt", pos, err)
		}
	}
}

func TestSnapshotRotation(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	writeAll(t, l, recs)

	// LastLSN must match the log position.
	if err := l.WriteSnapshot(sampleSnapshot(3)); err == nil {
		t.Fatal("WriteSnapshot accepted a stale LastLSN")
	}
	snap := sampleSnapshot(uint64(len(recs)))
	if err := l.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if n := l.RecordsSinceSnapshot(); n != 0 {
		t.Fatalf("RecordsSinceSnapshot after rotation = %d", n)
	}
	// Log restarted: new appends land at the file head with higher LSNs.
	writeAll(t, l, []Record{{Op: OpAddVertex, ID: 9, Doc: `{}`}})
	l.Close()

	st, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Snapshot == nil || !snapshotsEqual(st.Snapshot, snap) {
		t.Fatal("snapshot not recovered intact")
	}
	if len(st.Records) != 1 || st.Records[0].LSN != uint64(len(recs))+1 {
		t.Fatalf("post-snapshot tail = %+v", st.Records)
	}
}

func TestStaleLogAfterSnapshotRename(t *testing.T) {
	// Simulate a crash between the snapshot rename and the log truncation:
	// the log still holds records with LSN <= Snapshot.LastLSN.
	dir := t.TempDir()
	l, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	writeAll(t, l, recs)
	l.Close()
	if err := writeSnapshotFile(dir, sampleSnapshot(uint64(len(recs)))); err != nil {
		t.Fatal(err)
	}

	st, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Records) != 0 {
		t.Fatalf("stale records replayed: %+v", st.Records)
	}
	if st.ValidBytes != 0 {
		t.Fatalf("ValidBytes = %d, want 0 (whole log stale)", st.ValidBytes)
	}
	if st.NextLSN != uint64(len(recs))+1 {
		t.Fatalf("NextLSN = %d", st.NextLSN)
	}

	// Re-opening truncates the stale log and resumes after the snapshot.
	l2, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, l2, []Record{{Op: OpVacuum}})
	l2.Close()
	st2, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.Records) != 1 || st2.Records[0].LSN != uint64(len(recs))+1 {
		t.Fatalf("post-reopen tail = %+v", st2.Records)
	}
}

func TestWriteHookPartialWriteIsSticky(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	l.SetWriteHook(func(p []byte) (int, error) { return 3, boom })
	if _, err := l.Append(Record{Op: OpVacuum}); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); !errors.Is(err, boom) {
		t.Fatalf("Flush = %v, want boom", err)
	}
	// Sticky: everything fails now.
	if _, err := l.Append(Record{Op: OpVacuum}); !errors.Is(err, boom) {
		t.Fatalf("Append after failure = %v, want boom", err)
	}
	l.Close()

	// The 3 partial bytes are a torn header; recovery drops them.
	st, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Records) != 0 || st.TornBytes != 3 || st.ValidBytes != 0 {
		t.Fatalf("recover after partial write: %+v", st)
	}
}

// FuzzWALRecover feeds arbitrary log images to recovery. Whatever the
// bytes, Recover must not panic, must never yield a record whose re-encoded
// frame differs from what CRC validation accepted (i.e. never replays a
// record that fails its checksum), and must report a state that re-logging
// reproduces.
func FuzzWALRecover(f *testing.F) {
	// Seed with a valid log, truncations of it, and single-byte flips.
	var valid []byte
	for i, r := range testRecords() {
		r.LSN = uint64(i + 1)
		payload := r.encodePayload(nil)
		var hdr [8]byte
		putFrameHeader(hdr[:], payload)
		valid = append(valid, hdr[:]...)
		valid = append(valid, payload...)
	}
	f.Add(valid)
	for _, cut := range []int{1, 7, 8, 9, len(valid) / 2, len(valid) - 1} {
		if cut < len(valid) {
			f.Add(valid[:cut])
		}
	}
	for _, pos := range []int{0, 4, 8, len(valid) / 3, len(valid) - 2} {
		flipped := append([]byte(nil), valid...)
		flipped[pos] ^= 0x40
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, logName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Recover(dir)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-ErrCorrupt failure: %v", err)
			}
			return
		}
		// Every recovered record's frame must be present verbatim (CRC-valid
		// by construction) and LSNs strictly increase.
		var prev uint64
		var relog []byte
		for _, r := range st.Records {
			if r.LSN <= prev {
				t.Fatalf("non-monotonic LSN %d after %d", r.LSN, prev)
			}
			prev = r.LSN
			payload := r.encodePayload(nil)
			var hdr [8]byte
			putFrameHeader(hdr[:], payload)
			relog = append(relog, hdr[:]...)
			relog = append(relog, payload...)
		}
		if string(relog) != string(data[:st.ValidBytes]) {
			t.Fatalf("re-encoded records differ from accepted log prefix")
		}
		if st.ValidBytes+st.TornBytes != len(data) {
			t.Fatalf("ValidBytes %d + TornBytes %d != %d", st.ValidBytes, st.TornBytes, len(data))
		}
	})
}
