// Package sqlgraph is an efficient relational-based property graph store:
// a Go implementation of the system described in "SQLGraph: An Efficient
// Relational-Based Property Graph Store" (SIGMOD 2015).
//
// A property graph — a directed labeled graph whose vertices and edges
// carry key/value attributes — is stored inside an embedded relational
// engine using the paper's hybrid schema: graph adjacency is shredded
// into relational hash tables (label-to-column assignment by graph
// coloring of the label co-occurrence structure), while vertex and edge
// attributes live in JSON columns. Gremlin traversal queries with no side
// effects are compiled into a single SQL statement, so the relational
// optimizer plans the whole traversal at once.
//
// Quick start:
//
//	b := sqlgraph.NewBuilder()
//	b.AddVertex(1, map[string]any{"name": "marko", "age": 29})
//	b.AddVertex(3, map[string]any{"name": "lop", "lang": "java"})
//	b.AddEdge(9, 1, 3, "created", map[string]any{"weight": 0.4})
//	g, err := sqlgraph.Load(b, sqlgraph.Options{})
//	...
//	res, err := g.Query("g.V.has('name', 'marko').out('created').name")
package sqlgraph

import (
	"fmt"
	"time"

	"sqlgraph/internal/blueprints"
	"sqlgraph/internal/core"
	"sqlgraph/internal/engine"
	"sqlgraph/internal/stats"
	"sqlgraph/internal/trace"
	"sqlgraph/internal/translate"
	"sqlgraph/internal/wal"
)

// Options configures a store.
type Options struct {
	// OutCols / InCols bound the hash-table widths (column triads) for
	// outgoing and incoming adjacency. Zero means the default of 8.
	OutCols int
	InCols  int
	// ModuloColoring replaces the co-occurrence graph coloring with a
	// naive modulo hash (provided for the ablation study; expect more
	// spill rows).
	ModuloColoring bool
	// PaperSoftDelete makes RemoveVertex do exactly what the paper
	// describes — negate ids, drop EA rows — leaving dangling adjacency
	// entries to the offline Vacuum. The default additionally cleans
	// neighbor adjacency so query results are always exact.
	PaperSoftDelete bool
	// Dir makes the store durable: every mutation is appended to a
	// write-ahead log under this directory before it commits, and Open
	// recovers the graph from the latest snapshot plus the log tail. Empty
	// means in-memory only.
	Dir string
	// SnapshotEvery rewrites the snapshot and truncates the log after this
	// many logged mutations (durable stores only). Zero picks a sensible
	// default; negative disables automatic snapshots.
	SnapshotEvery int
	// GroupCommitDelay enables cross-writer group commit (durable stores
	// only): a dedicated flusher accumulates concurrent commits for up to
	// this long and makes them durable with one write+fsync. Zero keeps
	// every commit synchronous.
	GroupCommitDelay time.Duration
	// GroupCommitBatch flushes the group-commit window early once this
	// many mutations are pending (0 = no record cap).
	GroupCommitBatch int
}

func (o Options) internal() core.Options {
	opts := core.Options{
		OutCols: o.OutCols, InCols: o.InCols, Dir: o.Dir, SnapshotEvery: o.SnapshotEvery,
		GroupCommit: wal.GroupCommit{MaxDelay: o.GroupCommitDelay, MaxBatch: o.GroupCommitBatch},
	}
	if o.ModuloColoring {
		opts.Coloring = core.ColoringModulo
	}
	if o.PaperSoftDelete {
		opts.DeleteMode = core.DeletePaperSoft
	}
	return opts
}

// QueryOptions tune Gremlin-to-SQL translation.
type QueryOptions struct {
	// ForceEA answers every traversal from the edge-attribute table's
	// adjacency copy (normally only single-lookup queries do).
	ForceEA bool
	// ForceHashTables answers every traversal from the hash adjacency
	// tables, even single lookups.
	ForceHashTables bool
	// RecursiveLoops translates eligible loop pipes into recursive SQL
	// instead of unrolling them.
	RecursiveLoops bool
}

// Edge describes one edge.
type Edge struct {
	ID    int64
	From  int64 // source vertex (Gremlin's outV)
	To    int64 // target vertex (Gremlin's inV)
	Label string
}

// Result is the outcome of a Gremlin query.
type Result struct {
	// Values holds the emitted objects: int64 element ids for vertices
	// and edges, Go scalars for property values, []any for paths.
	Values []any
	// Stats reports how the translated SQL executed: join strategies,
	// rows examined per operator, and morsel fan-out. Stats.String()
	// renders a compact plan summary.
	Stats engine.ExecStats
	// Trace is the query's span tree — parse → translate → plan →
	// execute with one timed child per operator. Trace.Text() renders
	// the EXPLAIN ANALYZE plan tree.
	Trace *trace.Trace
}

// Count returns the number of emitted objects.
func (r *Result) Count() int { return len(r.Values) }

// Translation is a compiled Gremlin query.
type Translation struct {
	// SQL is the single statement the query compiles to.
	SQL string
	// ElemType names what the result column holds: "vertex", "edge", or
	// "value".
	ElemType string
}

// Builder accumulates a graph in memory for bulk loading. Bulk loading is
// the preferred path: the loader analyzes the label co-occurrence
// structure to derive the coloring hash before shredding.
type Builder struct {
	mem *blueprints.MemGraph
}

// NewBuilder creates an empty builder.
func NewBuilder() *Builder {
	return &Builder{mem: blueprints.NewMemGraph()}
}

// AddVertex adds a vertex with attributes.
func (b *Builder) AddVertex(id int64, attrs map[string]any) error {
	return b.mem.AddVertex(id, attrs)
}

// AddEdge adds an edge from `from` to `to`.
func (b *Builder) AddEdge(id, from, to int64, label string, attrs map[string]any) error {
	return b.mem.AddEdge(id, from, to, label, attrs)
}

// Counts reports the accumulated graph size.
func (b *Builder) Counts() (vertices, edges int) {
	return b.mem.CountVertices(), b.mem.CountEdges()
}

// Graph is a SQLGraph property-graph store.
type Graph struct {
	store *core.Store
}

// Open creates an empty store; labels hash to columns on first sight. Use
// Load when the data is available up front — the analyzed coloring packs
// adjacency tighter.
func Open(opts Options) (*Graph, error) {
	s, err := core.Open(opts.internal())
	if err != nil {
		return nil, err
	}
	return &Graph{store: s}, nil
}

// Load bulk-loads a built graph.
func Load(b *Builder, opts Options) (*Graph, error) {
	s, err := core.Load(b.mem, opts.internal())
	if err != nil {
		return nil, err
	}
	return &Graph{store: s}, nil
}

// Query runs a side-effect-free Gremlin query, compiled to a single SQL
// statement.
func (g *Graph) Query(gremlin string) (*Result, error) {
	r, err := g.store.Query(gremlin)
	if err != nil {
		return nil, err
	}
	return &Result{Values: r.Values, Stats: r.Stats, Trace: r.Trace}, nil
}

// QueryWithOptions runs a query with explicit translation options.
func (g *Graph) QueryWithOptions(gremlin string, opts QueryOptions) (*Result, error) {
	r, err := g.store.QueryWithOptions(gremlin, translate.Options{
		ForceEA:         opts.ForceEA,
		ForceHashTables: opts.ForceHashTables,
		RecursiveLoops:  opts.RecursiveLoops,
	})
	if err != nil {
		return nil, err
	}
	return &Result{Values: r.Values, Stats: r.Stats, Trace: r.Trace}, nil
}

// Translate compiles a Gremlin query to SQL without executing it.
func (g *Graph) Translate(gremlin string) (*Translation, error) {
	tr, err := g.store.Translate(gremlin, translate.Options{})
	if err != nil {
		return nil, err
	}
	return &Translation{SQL: tr.SQL, ElemType: tr.ElemType.String()}, nil
}

// AddVertex inserts a vertex.
func (g *Graph) AddVertex(id int64, attrs map[string]any) error {
	return g.store.AddVertex(id, attrs)
}

// AddEdge inserts an edge from `from` to `to` (a multi-table stored
// procedure updating the hash adjacency tables and the edge table
// atomically).
func (g *Graph) AddEdge(id, from, to int64, label string, attrs map[string]any) error {
	return g.store.AddEdge(id, from, to, label, attrs)
}

// RemoveVertex deletes a vertex using the paper's negative-id soft
// delete.
func (g *Graph) RemoveVertex(id int64) error { return g.store.RemoveVertex(id) }

// RemoveEdge deletes an edge.
func (g *Graph) RemoveEdge(id int64) error { return g.store.RemoveEdge(id) }

// SetVertexAttr sets one vertex attribute.
func (g *Graph) SetVertexAttr(id int64, key string, val any) error {
	return g.store.SetVertexAttr(id, key, val)
}

// RemoveVertexAttr removes one vertex attribute.
func (g *Graph) RemoveVertexAttr(id int64, key string) error {
	return g.store.RemoveVertexAttr(id, key)
}

// SetEdgeAttr sets one edge attribute.
func (g *Graph) SetEdgeAttr(id int64, key string, val any) error {
	return g.store.SetEdgeAttr(id, key, val)
}

// RemoveEdgeAttr removes one edge attribute.
func (g *Graph) RemoveEdgeAttr(id int64, key string) error {
	return g.store.RemoveEdgeAttr(id, key)
}

// VertexExists reports whether the vertex is live.
func (g *Graph) VertexExists(id int64) bool { return g.store.VertexExists(id) }

// VertexAttrs returns a copy of a vertex's attributes.
func (g *Graph) VertexAttrs(id int64) (map[string]any, error) {
	return g.store.VertexAttrs(id)
}

// EdgeByID returns an edge's endpoints and label.
func (g *Graph) EdgeByID(id int64) (Edge, error) {
	rec, err := g.store.Edge(id)
	if err != nil {
		return Edge{}, err
	}
	return Edge{ID: rec.ID, From: rec.Out, To: rec.In, Label: rec.Label}, nil
}

// EdgeAttrs returns a copy of an edge's attributes.
func (g *Graph) EdgeAttrs(id int64) (map[string]any, error) {
	return g.store.EdgeAttrs(id)
}

// OutEdges lists a vertex's outgoing edges, optionally label-filtered.
func (g *Graph) OutEdges(v int64, labels ...string) ([]Edge, error) {
	recs, err := g.store.OutEdges(v, labels...)
	return toEdges(recs), err
}

// InEdges lists a vertex's incoming edges.
func (g *Graph) InEdges(v int64, labels ...string) ([]Edge, error) {
	recs, err := g.store.InEdges(v, labels...)
	return toEdges(recs), err
}

func toEdges(recs []blueprints.EdgeRec) []Edge {
	out := make([]Edge, len(recs))
	for i, r := range recs {
		out[i] = Edge{ID: r.ID, From: r.Out, To: r.In, Label: r.Label}
	}
	return out
}

// VerticesByAttr finds vertices by attribute value (indexed when
// CreateVertexAttrIndex has been called for the key).
func (g *Graph) VerticesByAttr(key string, val any) ([]int64, error) {
	return g.store.VerticesByAttr(key, val)
}

// CreateVertexAttrIndex builds a JSON expression index over a vertex
// attribute key.
func (g *Graph) CreateVertexAttrIndex(key string) error {
	return g.store.CreateVertexAttrIndex(key)
}

// CreateEdgeAttrIndex builds a JSON expression index over an edge
// attribute key.
func (g *Graph) CreateEdgeAttrIndex(key string) error {
	return g.store.CreateEdgeAttrIndex(key)
}

// CountVertices returns the number of live vertices.
func (g *Graph) CountVertices() int { return g.store.CountVertices() }

// CountEdges returns the number of edges.
func (g *Graph) CountEdges() int { return g.store.CountEdges() }

// Snapshot pins the current version of the graph and returns a
// consistent read-only view of it. Any number of snapshots can be read
// concurrently — with each other and with writers: mutations made after
// Snapshot returns are invisible to the view, and the snapshot never
// blocks them. Call Close when done so superseded row versions can be
// reclaimed.
//
//	snap := g.Snapshot()
//	defer snap.Close()
//	res, err := snap.Query("g.V.count")  // frozen even if writers proceed
func (g *Graph) Snapshot() *Snapshot {
	return &Snapshot{snap: g.store.Snapshot()}
}

// Snapshot is a pinned, immutable view of the whole graph at one
// version, safe for concurrent use from multiple goroutines.
type Snapshot struct {
	snap *core.Snap
}

// Version reports the store version the snapshot reads at.
func (s *Snapshot) Version() uint64 { return s.snap.Version() }

// Close releases the snapshot. Idempotent; reads after Close fail.
func (s *Snapshot) Close() { s.snap.Close() }

// Query runs a side-effect-free Gremlin query against the snapshot.
func (s *Snapshot) Query(gremlin string) (*Result, error) {
	r, err := s.snap.Query(gremlin)
	if err != nil {
		return nil, err
	}
	return &Result{Values: r.Values, Stats: r.Stats, Trace: r.Trace}, nil
}

// QueryWithOptions runs a query against the snapshot with explicit
// translation options.
func (s *Snapshot) QueryWithOptions(gremlin string, opts QueryOptions) (*Result, error) {
	r, err := s.snap.QueryWithOptions(gremlin, translate.Options{
		ForceEA:         opts.ForceEA,
		ForceHashTables: opts.ForceHashTables,
		RecursiveLoops:  opts.RecursiveLoops,
	})
	if err != nil {
		return nil, err
	}
	return &Result{Values: r.Values, Stats: r.Stats, Trace: r.Trace}, nil
}

// VertexExists reports whether the vertex was live at the snapshot.
func (s *Snapshot) VertexExists(id int64) bool { return s.snap.VertexExists(id) }

// VertexAttrs returns a vertex's attributes at the snapshot.
func (s *Snapshot) VertexAttrs(id int64) (map[string]any, error) {
	return s.snap.VertexAttrs(id)
}

// EdgeByID returns an edge's endpoints and label at the snapshot.
func (s *Snapshot) EdgeByID(id int64) (Edge, error) {
	rec, err := s.snap.Edge(id)
	if err != nil {
		return Edge{}, err
	}
	return Edge{ID: rec.ID, From: rec.Out, To: rec.In, Label: rec.Label}, nil
}

// EdgeAttrs returns an edge's attributes at the snapshot.
func (s *Snapshot) EdgeAttrs(id int64) (map[string]any, error) {
	return s.snap.EdgeAttrs(id)
}

// OutEdges lists a vertex's outgoing edges at the snapshot.
func (s *Snapshot) OutEdges(v int64, labels ...string) ([]Edge, error) {
	recs, err := s.snap.OutEdges(v, labels...)
	return toEdges(recs), err
}

// InEdges lists a vertex's incoming edges at the snapshot.
func (s *Snapshot) InEdges(v int64, labels ...string) ([]Edge, error) {
	recs, err := s.snap.InEdges(v, labels...)
	return toEdges(recs), err
}

// VertexIDs lists live vertex ids at the snapshot, sorted.
func (s *Snapshot) VertexIDs() []int64 { return s.snap.VertexIDs() }

// EdgeIDs lists edge ids at the snapshot, sorted.
func (s *Snapshot) EdgeIDs() []int64 { return s.snap.EdgeIDs() }

// VerticesByAttr finds vertices by attribute value at the snapshot.
func (s *Snapshot) VerticesByAttr(key string, val any) ([]int64, error) {
	return s.snap.VerticesByAttr(key, val)
}

// CountVertices counts live vertices at the snapshot.
func (s *Snapshot) CountVertices() int { return s.snap.CountVertices() }

// CountEdges counts edges at the snapshot.
func (s *Snapshot) CountEdges() int { return s.snap.CountEdges() }

// PinnedSnapshots reports how many distinct store versions are still
// pinned by open snapshots. Zero means every Snapshot has been closed
// and the garbage collector can reclaim all superseded row images.
func (g *Graph) PinnedSnapshots() int { return g.store.PinnedSnapshots() }

// Vacuum physically reclaims rows left by soft deletes (the offline
// cleanup the paper describes but leaves unimplemented).
func (g *Graph) Vacuum() (int, error) { return g.store.Vacuum() }

// Bytes approximates the storage footprint.
func (g *Graph) Bytes() int64 { return g.store.TotalBytes() }

// SetParallelism caps the number of workers the SQL executor may fan a
// single query out to (morsel-driven parallelism): 0 restores the
// default (GOMAXPROCS), 1 forces serial execution. Query results are
// identical at any setting.
func (g *Graph) SetParallelism(n int) { g.store.SetParallelism(n) }

// Stats summarizes the hash tables (paper Table 3): spill rows,
// multi-value rows, label bucket sizes.
func (g *Graph) Stats() (string, error) {
	out, in, va, err := g.store.Stats()
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%s\n%s\nVertex attributes: rows=%d keys=%d long-strings=%d",
		out, in, va.Rows, va.DistinctKeys, va.LongStringVal), nil
}

// OptimizerStats snapshots the cost-based planner's statistics — per-table
// row counts, NDV estimates, histogram bounds, and per-edge-label degree
// summaries — in a JSON-friendly shape. maxGroups bounds the per-table
// group listing (largest labels first; 0 = all).
func (g *Graph) OptimizerStats(maxGroups int) []stats.TableDescription {
	return g.store.OptimizerStats().Describe(maxGroups)
}

// RefreshStats rebuilds every planner statistic from a table scan,
// including the rebuild-only histograms (otherwise refreshed at load,
// recovery, and checkpoints).
func (g *Graph) RefreshStats() error { return g.store.RefreshStats() }

// SetForcePlan pins the planner's join-order choice for subsequent
// queries: 0 restores cost-based planning, -1 forces the syntactic FROM
// order, k >= 1 pins the k-th enumerated order (wrapping modulo the
// enumeration count). Results are identical at any setting.
func (g *Graph) SetForcePlan(k int) { g.store.SetForcePlan(k) }

// Close flushes and closes the write-ahead log of a durable store. It is
// a no-op for in-memory stores.
func (g *Graph) Close() error { return g.store.Close() }

// Checkpoint writes a full snapshot and truncates the write-ahead log of
// a durable store, independent of the SnapshotEvery cadence.
func (g *Graph) Checkpoint() error { return g.store.Checkpoint() }

// Check runs the graph fsck: it verifies the hybrid schema's internal
// invariants (every edge has exactly one matching cell on each adjacency
// side, spill flags match row counts, deleted vertices own no live edge
// rows, attribute documents parse) and returns a human-readable line per
// violation. A healthy store returns nil.
func (g *Graph) Check() []string {
	vs := core.Check(g.store)
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.String()
	}
	return out
}

// Fsck verifies a durable store directory offline: it recovers the graph
// from the snapshot and log (failing on any corrupt record that is not a
// torn tail) and runs the same invariant checks as Graph.Check. It never
// modifies the directory.
func Fsck(dir string) ([]string, error) {
	vs, err := core.Fsck(dir)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.String()
	}
	return out, nil
}
