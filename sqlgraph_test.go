package sqlgraph

import (
	"strings"
	"testing"
)

func sampleGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(b.AddVertex(1, map[string]any{"name": "marko", "age": 29}))
	must(b.AddVertex(2, map[string]any{"name": "vadas", "age": 27}))
	must(b.AddVertex(3, map[string]any{"name": "lop", "lang": "java"}))
	must(b.AddVertex(4, map[string]any{"name": "josh", "age": 32}))
	must(b.AddEdge(7, 1, 2, "knows", map[string]any{"weight": 0.5}))
	must(b.AddEdge(8, 1, 4, "knows", map[string]any{"weight": 1.0}))
	must(b.AddEdge(9, 1, 3, "created", map[string]any{"weight": 0.4}))
	must(b.AddEdge(10, 4, 2, "likes", map[string]any{"weight": 0.2}))
	must(b.AddEdge(11, 4, 3, "created", map[string]any{"weight": 0.8}))
	if v, e := b.Counts(); v != 4 || e != 5 {
		t.Fatalf("builder counts = %d, %d", v, e)
	}
	g, err := Load(b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPublicQuery(t *testing.T) {
	g := sampleGraph(t)
	r, err := g.Query("g.V.has('name', 'marko').out('created').name")
	if err != nil {
		t.Fatal(err)
	}
	if r.Count() != 1 || r.Values[0] != "lop" {
		t.Fatalf("result = %v", r.Values)
	}
	r, err = g.Query("g.V.count()")
	if err != nil || r.Values[0] != int64(4) {
		t.Fatalf("count = %v, %v", r, err)
	}
}

func TestPublicQueryOptions(t *testing.T) {
	g := sampleGraph(t)
	for _, opts := range []QueryOptions{{}, {ForceEA: true}, {ForceHashTables: true}} {
		r, err := g.QueryWithOptions("g.V(1).out.dedup().count()", opts)
		if err != nil || r.Values[0] != int64(3) {
			t.Fatalf("opts %+v: %v, %v", opts, r, err)
		}
	}
}

func TestPublicTranslate(t *testing.T) {
	g := sampleGraph(t)
	tr, err := g.Translate("g.V.filter{it.age >= 29}.out.dedup().count()")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tr.SQL, "SELECT") {
		t.Fatalf("SQL = %s", tr.SQL)
	}
	if tr.ElemType != "value" {
		t.Fatalf("elem type = %s", tr.ElemType)
	}
}

func TestPublicCRUD(t *testing.T) {
	g, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddVertex(1, map[string]any{"k": "v"}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddVertex(2, nil); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(10, 1, 2, "knows", map[string]any{"w": 1}); err != nil {
		t.Fatal(err)
	}
	if !g.VertexExists(1) || g.VertexExists(3) {
		t.Fatal("VertexExists wrong")
	}
	attrs, err := g.VertexAttrs(1)
	if err != nil || attrs["k"] != "v" {
		t.Fatalf("attrs = %v, %v", attrs, err)
	}
	e, err := g.EdgeByID(10)
	if err != nil || e.From != 1 || e.To != 2 || e.Label != "knows" {
		t.Fatalf("edge = %+v, %v", e, err)
	}
	out, err := g.OutEdges(1)
	if err != nil || len(out) != 1 {
		t.Fatalf("out = %v, %v", out, err)
	}
	in, err := g.InEdges(2, "knows")
	if err != nil || len(in) != 1 {
		t.Fatalf("in = %v, %v", in, err)
	}
	if err := g.SetVertexAttr(1, "k2", 5); err != nil {
		t.Fatal(err)
	}
	if err := g.SetEdgeAttr(10, "w", 2); err != nil {
		t.Fatal(err)
	}
	ea, _ := g.EdgeAttrs(10)
	if ea["w"] != int64(2) {
		t.Fatalf("edge attrs = %v", ea)
	}
	if err := g.RemoveVertexAttr(1, "k"); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveEdgeAttr(10, "w"); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveEdge(10); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveVertex(2); err != nil {
		t.Fatal(err)
	}
	if g.CountVertices() != 1 {
		t.Fatalf("vertices = %d", g.CountVertices())
	}
	if g.CountEdges() != 0 {
		t.Fatalf("edges = %d", g.CountEdges())
	}
	if _, err := g.Vacuum(); err != nil {
		t.Fatal(err)
	}
	if g.Bytes() <= 0 {
		t.Fatal("Bytes must be positive")
	}
}

func TestPublicAttrIndexAndLookup(t *testing.T) {
	g := sampleGraph(t)
	if err := g.CreateVertexAttrIndex("name"); err != nil {
		t.Fatal(err)
	}
	if err := g.CreateEdgeAttrIndex("weight"); err != nil {
		t.Fatal(err)
	}
	ids, err := g.VerticesByAttr("name", "vadas")
	if err != nil || len(ids) != 1 || ids[0] != 2 {
		t.Fatalf("lookup = %v, %v", ids, err)
	}
}

func TestPublicStats(t *testing.T) {
	g := sampleGraph(t)
	s, err := g.Stats()
	if err != nil || !strings.Contains(s, "Outgoing Adjacency") {
		t.Fatalf("stats = %q, %v", s, err)
	}
}

func TestPublicOptionsVariants(t *testing.T) {
	b := NewBuilder()
	_ = b.AddVertex(1, nil)
	_ = b.AddVertex(2, nil)
	_ = b.AddEdge(5, 1, 2, "x", nil)
	for _, opts := range []Options{
		{},
		{OutCols: 2, InCols: 2},
		{ModuloColoring: true},
		{PaperSoftDelete: true},
	} {
		g, err := Load(b, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		r, err := g.Query("g.V(1).out")
		if err != nil || r.Count() != 1 {
			t.Fatalf("%+v: %v, %v", opts, r, err)
		}
	}
}

func TestPathQuery(t *testing.T) {
	g := sampleGraph(t)
	r, err := g.Query("g.V(1).out('knows').out('created').path")
	if err != nil {
		t.Fatal(err)
	}
	if r.Count() != 1 {
		t.Fatalf("paths = %v", r.Values)
	}
	p, ok := r.Values[0].([]any)
	if !ok || len(p) != 3 || p[0] != int64(1) || p[1] != int64(4) || p[2] != int64(3) {
		t.Fatalf("path = %v", r.Values[0])
	}
}
