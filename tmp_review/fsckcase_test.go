package main

import (
	"fmt"
	"testing"

	"sqlgraph/internal/core"
)

func TestReAddAfterSoftDelete(t *testing.T) {
	s, err := core.Open(core.Options{DeleteMode: core.DeleteClean})
	if err != nil { t.Fatal(err) }
	if err := s.AddVertex(1, nil); err != nil { t.Fatal(err) }
	if err := s.RemoveVertex(1); err != nil { t.Fatal(err) }
	if err := s.AddVertex(1, nil); err != nil { t.Fatal(err) }
	vs := core.Check(s)
	for _, v := range vs { fmt.Println(v) }
	fmt.Println("violations:", len(vs))
	// and delete again
	err = s.RemoveVertex(1)
	fmt.Println("second remove err:", err)
}
